(* The truth-height model of SProp: lattice/modal laws in both the
   transfinite and the finite instantiation, the OFE structure, and
   Banach fixed points (Theorem 6.3). *)

open Tfiris
module Q = QCheck2
module H = Height
module FH = Fin_height

let w = Ord.omega

let test_basics () =
  Alcotest.(check bool) "⊨ ⊤" true (H.valid H.tt);
  Alcotest.(check bool) "⊭ ⊥" false (H.valid H.ff);
  Alcotest.(check bool) "⊥ holds nowhere" false (H.holds_at H.ff Ord.zero);
  Alcotest.(check bool) "H ω holds at 3" true (H.holds_at (H.of_ord w) (Ord.of_int 3));
  Alcotest.(check bool) "H ω fails at ω" false (H.holds_at (H.of_ord w) w);
  Alcotest.(check bool) "⊥ ⊨ P" true (H.entails H.ff (H.of_ord w));
  Alcotest.(check bool) "P ⊨ ⊤" true (H.entails (H.of_ord w) H.tt)

let test_later () =
  (* h(▷P) = h(P)+1; ▷ is sound: ⊨ ▷P implies ⊨ P (on cuts: ▷P = ⊤ only
     if P = ⊤). *)
  Alcotest.(check string) "▷(H ω) = H (ω+1)"
    (H.to_string (H.of_ord (Ord.succ w)))
    (H.to_string (H.later (H.of_ord w)));
  Alcotest.(check bool) "▷⊤ = ⊤" true (H.valid (H.later H.tt));
  Alcotest.(check bool) "▷ⁿ⊥ never valid" false
    (H.valid (H.later_n 40 H.ff));
  (* ▷ⁿ⊥ has height exactly n *)
  Alcotest.(check string) "h(▷³⊥) = 3"
    (H.to_string (H.of_ord (Ord.of_int 3)))
    (H.to_string (H.later_n 3 H.ff))

let test_sup_family () =
  (* the §2.7 counterexample at the model level *)
  let fam n = H.later_n n H.ff in
  let trans = H.sup_family ~limit:w fam in
  Alcotest.(check bool) "trans: ∃n.▷ⁿ⊥ invalid" false (H.valid trans);
  Alcotest.(check string) "trans: height ω" (H.to_string (H.of_ord w))
    (H.to_string trans);
  let fin = FH.sup_family ~limit:w (fun n -> FH.later_n n FH.ff) in
  Alcotest.(check bool) "finite: ∃n.▷ⁿ⊥ VALID" true (FH.valid fin);
  (* a bounded family stays bounded in both models *)
  let bounded _ = H.of_ord (Ord.of_int 5) in
  Alcotest.(check bool) "bounded family not Top" false
    (H.valid (H.sup_family ~limit:(Ord.of_int 5) bounded));
  (* over-declared limit raises *)
  Alcotest.(check bool) "bad declaration rejected" true
    (match H.sup_family ~limit:(Ord.of_int 2) fam with
    | exception H.Bad_family _ -> true
    | _ -> false)

let test_fixpoint () =
  (* f P = Q ∧ ▷P has the fixpoint H hQ (or ⊤ for Q = ⊤) *)
  let q = H.of_ord w in
  let f p = H.conj q (H.later p) in
  (match H.fixpoint f with
  | Some r ->
    Alcotest.(check string) "fixpoint of Q ∧ ▷·" (H.to_string q) (H.to_string r);
    Alcotest.(check bool) "is a fixed point" true (H.equal (f r) r)
  | None -> Alcotest.fail "no fixpoint found");
  (match H.fixpoint (fun p -> H.later p) with
  | Some r -> Alcotest.(check bool) "fixpoint of ▷ is ⊤" true (H.valid r)
  | None -> Alcotest.fail "no fixpoint for ▷");
  (* finite iteration from ⊥ does NOT reach the limit fixpoint: the
     iterates of Q ∧ ▷· from ⊥ are the finite cuts 0,1,2,… *)
  let iterates = H.iterates f 10 in
  Alcotest.(check bool) "iterates from ⊥ stay finite" true
    (List.for_all
       (fun p ->
         match p with
         | H.H a -> Ord.is_finite a
         | H.Top -> false)
       iterates)

let prop name gen print f =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count:300 ~name ~print gen f)

let pair_print (a, b) = Printf.sprintf "(%s, %s)" (H.to_string a) (H.to_string b)
let triple_print (a, b, c) =
  Printf.sprintf "(%s, %s, %s)" (H.to_string a) (H.to_string b) (H.to_string c)

let hpair = Q.Gen.pair Gen.height Gen.height
let htriple = Q.Gen.triple Gen.height Gen.height Gen.height

let properties =
  [
    prop "conj is the meet" hpair pair_print (fun (p, q) ->
        let m = H.conj p q in
        H.entails m p && H.entails m q);
    prop "disj is the join" hpair pair_print (fun (p, q) ->
        let j = H.disj p q in
        H.entails p j && H.entails q j);
    prop "impl: modus ponens" hpair pair_print (fun (p, q) ->
        H.entails (H.conj (H.impl p q) p) q);
    prop "impl: adjunction" htriple triple_print (fun (p, q, r) ->
        Bool.equal (H.entails (H.conj p q) r) (H.entails p (H.impl q r)));
    prop "later is monotone" hpair pair_print (fun (p, q) ->
        (not (H.entails p q)) || H.entails (H.later p) (H.later q));
    prop "later intro: P ⊨ ▷P" Gen.height H.to_string (fun p ->
        H.entails p (H.later p));
    prop "later soundness: ⊨ ▷P → ⊨ P" Gen.height H.to_string (fun p ->
        (not (H.valid (H.later p))) || H.valid p);
    prop "Löb: (▷P ⇒ P) ⊨ P" Gen.height H.to_string (fun p ->
        H.entails (H.impl (H.later p) p) p);
    prop "later distributes over conj" hpair pair_print (fun (p, q) ->
        H.equal (H.later (H.conj p q)) (H.conj (H.later p) (H.later q)));
    prop "down-closure" (Q.Gen.pair Gen.height Gen.ord)
      (fun (p, a) -> Printf.sprintf "(%s, %s)" (H.to_string p) (Ord.to_string a))
      (fun (p, a) ->
        (* if P holds at a it holds at every sampled b ≤ a *)
        (not (H.holds_at p a))
        || List.for_all
             (fun b -> (not (Ord.le b a)) || H.holds_at p b)
             [ Ord.zero; Ord.one; w; Ord.succ w; a ]);
    prop "dist coarsens as the index decreases"
      (Q.Gen.triple Gen.height Gen.height Gen.ord)
      (fun (p, q, a) ->
        Printf.sprintf "(%s, %s, %s)" (H.to_string p) (H.to_string q)
          (Ord.to_string a))
      (fun (p, q, a) ->
        (* p ≡_{a+1} q implies p ≡_a q *)
        (not (H.dist (Ord.succ a) p q)) || H.dist a p q);
    prop "entailment is the height order" hpair pair_print (fun (p, q) ->
        Bool.equal (H.entails p q) (H.compare p q <= 0));
  ]

let suite =
  [
    Alcotest.test_case "basic validity" `Quick test_basics;
    Alcotest.test_case "later modality" `Quick test_later;
    Alcotest.test_case "family suprema (both models)" `Quick test_sup_family;
    Alcotest.test_case "Banach fixed points (Thm 6.3)" `Quick test_fixpoint;
  ]
  @ properties
