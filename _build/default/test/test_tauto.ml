(* The G4ip prover: every found derivation must re-check (in both
   systems) and be semantically sound; known theorems are found; known
   non-theorems are not; and the Gödel–Dummett axiom separates
   syntactic provability from validity in the linear models. *)

module Q = QCheck2
open Tfiris
module F = Formula

let a = F.Index_lt (Ord.of_int 3)
let b = F.Index_lt Ord.omega
let c = F.Index_lt Ord.one
let neg p = F.Impl (p, F.False)

let checks_and_sound (d : Proof.t) (expected_rhs : F.t) : bool =
  List.for_all
    (fun system ->
      match Proof.check system d with
      | Ok seq ->
        F.equal seq.Proof.rhs expected_rhs
        && F.equal seq.Proof.lhs F.True
        && Proof.conclusion_sound system seq
      | Error _ -> false)
    [ Proof.Finite; Proof.Transfinite ]

let expect_provable name goal =
  match Tauto.prove goal with
  | Some d ->
    Alcotest.(check bool) (name ^ ": derivation checks + sound") true
      (checks_and_sound d goal)
  | None -> Alcotest.failf "%s: not proved" name

let expect_unprovable name goal =
  match Tauto.prove goal with
  | Some _ -> Alcotest.failf "%s: unexpectedly proved" name
  | None -> ()

let test_theorems () =
  expect_provable "identity" (F.Impl (a, a));
  expect_provable "K" (F.Impl (a, F.Impl (b, a)));
  expect_provable "S"
    (F.Impl
       ( F.Impl (a, F.Impl (b, c)),
         F.Impl (F.Impl (a, b), F.Impl (a, c)) ));
  expect_provable "and-comm" (F.Impl (F.And (a, b), F.And (b, a)));
  expect_provable "or-comm" (F.Impl (F.Or (a, b), F.Or (b, a)));
  expect_provable "curry"
    (F.Impl (F.Impl (F.And (a, b), c), F.Impl (a, F.Impl (b, c))));
  expect_provable "uncurry"
    (F.Impl (F.Impl (a, F.Impl (b, c)), F.Impl (F.And (a, b), c)));
  expect_provable "distrib"
    (F.Impl (F.And (a, F.Or (b, c)), F.Or (F.And (a, b), F.And (a, c))));
  expect_provable "or-elim-as-impl"
    (F.Impl (F.Or (a, b), F.Impl (F.Impl (a, c), F.Impl (F.Impl (b, c), c))));
  expect_provable "efq" (F.Impl (F.False, a));
  expect_provable "true" F.True;
  expect_provable "non-contradiction" (neg (F.And (a, neg a)));
  expect_provable "double-negation intro" (F.Impl (a, neg (neg a)));
  (* the classic: ¬¬(A ∨ ¬A), exercising the nested-implication left
     rule of G4ip *)
  expect_provable "weak excluded middle of LEM" (neg (neg (F.Or (a, neg a))));
  expect_provable "de morgan (∨ to ∧)"
    (F.Impl (neg (F.Or (a, b)), F.And (neg a, neg b)));
  expect_provable "triple-to-single negation"
    (F.Impl (neg (neg (neg a)), neg a))

let test_non_theorems () =
  expect_unprovable "atom" a;
  expect_unprovable "LEM" (F.Or (a, neg a));
  expect_unprovable "Peirce" (F.Impl (F.Impl (F.Impl (a, b), a), a));
  expect_unprovable "double-negation elim" (F.Impl (neg (neg a), a));
  expect_unprovable "de morgan (∧ to ∨)"
    (F.Impl (neg (F.And (a, b)), F.Or (neg a, neg b)));
  expect_unprovable "false" F.False;
  expect_unprovable "and from or" (F.Impl (F.Or (a, b), F.And (a, b)))

let test_goedel_dummett () =
  (* the heights form a CHAIN, so the model validates (P⇒Q)∨(Q⇒P);
     intuitionistic logic does not prove it: our prover correctly fails
     while both models correctly validate — provability is strictly
     stronger than validity in these models. *)
  let gd = F.Or (F.Impl (a, b), F.Impl (b, a)) in
  expect_unprovable "Gödel–Dummett" gd;
  Alcotest.(check bool) "GD valid transfinitely" true
    (Logic_semantics.valid_trans gd);
  Alcotest.(check bool) "GD valid finitely" true (Logic_semantics.valid_fin gd)

let test_entails () =
  (match Tauto.entails (F.And (a, b)) (F.And (b, a)) with
  | Some d -> (
    match Proof.check Proof.Transfinite d with
    | Ok seq ->
      Alcotest.(check bool) "entails conclusion" true
        (F.equal seq.Proof.lhs (F.And (a, b))
        && F.equal seq.Proof.rhs (F.And (b, a)))
    | Error e -> Alcotest.failf "entails: %a" Proof.pp_error e)
  | None -> Alcotest.fail "entails failed");
  match Tauto.entails a b with
  | Some _ -> Alcotest.fail "a ⊢ b has no intuitionistic proof"
  | None -> ()

(* every proved random formula yields a checking, sound derivation; and
   provability implies validity in both models (soundness of LJ for the
   height semantics) *)
let soundness_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:600 ~name:"prover soundness on random formulas"
       ~print:Gen.print_formula Gen.formula
       (fun f ->
         match Tauto.prove f with
         | None -> true
         | Some d ->
           checks_and_sound d f
           && Logic_semantics.valid_trans f
           && Logic_semantics.valid_fin f))

(* agreement with the semantics on the implication-free fragment, where
   the chain semantics coincides with provability from no hypotheses:
   an ∧/∨ formula over ⊤/⊥ is provable iff it evaluates to ⊤ *)
let rec bool_formula (depth : int) : F.t Q.Gen.t =
  let open Q.Gen in
  if depth = 0 then oneofl [ F.True; F.False ]
  else
    let sub = bool_formula (depth - 1) in
    oneof
      [
        oneofl [ F.True; F.False ];
        map2 (fun x y -> F.And (x, y)) sub sub;
        map2 (fun x y -> F.Or (x, y)) sub sub;
      ]

let completeness_bool_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:400
       ~name:"completeness on the ∧/∨/⊤/⊥ fragment"
       ~print:Gen.print_formula (bool_formula 4)
       (fun f ->
         Bool.equal (Tauto.provable f) (Logic_semantics.valid_trans f)))

let suite =
  [
    Alcotest.test_case "theorems found" `Quick test_theorems;
    Alcotest.test_case "non-theorems not found" `Quick test_non_theorems;
    Alcotest.test_case "Gödel–Dummett separates models from LJ" `Quick
      test_goedel_dummett;
    Alcotest.test_case "entailment search" `Quick test_entails;
    soundness_prop;
    completeness_bool_prop;
  ]
