(* Resource algebras and uniform predicates: PCM laws, split
   enumeration, separating conjunction, and the §7 observation that
   ▷(P ∗ Q) ⊢ ▷P ∗ ▷Q fails in the transfinite model. *)

open Tfiris
module Q = QCheck2

module IntKey = struct
  type t = int

  let compare = Stdlib.compare
  let pp = Format.pp_print_int
end

module IntVal = struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end

module H = Resource.Heap (IntKey) (IntVal)
module C = Resource.Credits
module P = Upred.Make (H)

let heap_gen : H.t Q.Gen.t =
  let open Q.Gen in
  let* n = int_bound 4 in
  let* kvs = list_repeat n (pair (int_bound 5) (int_bound 9)) in
  return (H.of_list kvs)

let print_heap h = Format.asprintf "%a" H.pp h

let test_heap_ra () =
  let a = H.of_list [ (1, 10); (2, 20) ] in
  let b = H.of_list [ (3, 30) ] in
  let c = H.of_list [ (1, 99) ] in
  (match H.compose a b with
  | Some ab -> Alcotest.(check int) "disjoint union size" 3 (List.length (H.bindings ab))
  | None -> Alcotest.fail "disjoint compose failed");
  Alcotest.(check bool) "overlapping compose invalid" true (H.compose a c = None);
  Alcotest.(check int) "splits of 2-binding heap" 4 (List.length (H.splits a));
  Alcotest.(check bool) "unit is neutral" true
    (match H.compose a H.unit with Some x -> H.equal x a | None -> false)

let test_credit_ra () =
  let w = Ord.omega in
  let a = Ord.add w (Ord.of_int 2) in
  (* splits of ω+2: coefficient splits of [ω^1·1; ω^0·2] = 2·3 = 6 *)
  Alcotest.(check int) "splits of ω+2" 6 (List.length (C.splits a));
  Alcotest.(check bool) "every split recomposes" true
    (List.for_all
       (fun (x, y) -> Ord.equal (Ord.hsum x y) a)
       (C.splits a))

let test_upred () =
  let r12 = H.of_list [ (1, 10); (2, 20) ] in
  let p1 = P.own (H.singleton 1 10) in
  let p2 = P.own (H.singleton 2 20) in
  (* ownership of both pieces holds of the combined heap via ∗ *)
  Alcotest.(check bool) "ℓ1↦10 ∗ ℓ2↦20 at combined heap" true
    (P.holds (P.sep p1 p2) r12 Ord.zero);
  Alcotest.(check bool) "ℓ1↦10 ∗ ℓ1↦10 unsatisfiable" false
    (P.holds (P.sep p1 p1) r12 Ord.zero);
  Alcotest.(check bool) "own is monotone" true
    (P.monotone_on [ H.unit; H.singleton 1 10; r12 ] p1)

let test_later_sep_commuting () =
  (* §7: ▷(P ∗ Q) ⊨ ▷P ∗ ▷Q fails transfinitely. Build P, Q whose
     heights depend on the split so that the sup-over-splits interacts
     with ▷ the same way it does with ∃. On single-resource carriers the
     two sides agree; the failure needs the ∃ over an unbounded family,
     which the finite-split model cannot exhibit — we verify agreement
     here and the genuine failure at the ∃-level in Test_logic. *)
  let r = H.of_list [ (1, 0) ] in
  let p = P.pure (Height.of_ord Ord.omega) in
  let q = P.own (H.singleton 1 0) in
  let lhs = P.later (P.sep p q) in
  let rhs = P.sep (P.later p) (P.later q) in
  Alcotest.(check bool) "finite splits: both sides agree" true
    (P.entails_on [ H.unit; r ] lhs rhs && P.entails_on [ H.unit; r ] rhs lhs)

let test_core_and_box () =
  (* core laws on the heap RA *)
  let r = H.of_list [ (1, 10) ] in
  Alcotest.(check bool) "core r · r = r" true
    (match H.compose (H.core r) r with Some x -> H.equal x r | None -> false);
  Alcotest.(check bool) "core idempotent" true
    (H.equal (H.core (H.core r)) (H.core r));
  (* □ laws over upreds: □P ⊢ P on monotone P; □P duplicable *)
  let rs = [ H.unit; H.singleton 1 10; H.of_list [ (1, 10); (2, 20) ] ] in
  let pure_p = P.pure (Height.of_ord Ord.omega) in
  Alcotest.(check bool) "□(pure) ⊢ pure" true
    (P.entails_on rs (P.box pure_p) pure_p);
  Alcotest.(check bool) "□P ⊢ □□P" true
    (P.entails_on rs (P.box pure_p) (P.box (P.box pure_p)));
  Alcotest.(check bool) "□P ⊢ □P ∗ □P" true
    (P.entails_on rs (P.box pure_p) (P.sep (P.box pure_p) (P.box pure_p)));
  (* ownership of an exclusive resource is NOT persistent *)
  let own1 = P.own (H.singleton 1 10) in
  Alcotest.(check bool) "□(own ℓ↦v) is trivialized" false
    (P.entails_on rs own1 (P.box own1) && P.entails_on rs (P.box own1) own1)

let test_fixpoint_on () =
  let rs = [ H.unit; H.singleton 1 1 ] in
  let q = P.own (H.singleton 1 1) in
  let f p = P.conj q (P.later p) in
  match P.fixpoint_on rs f with
  | Some r ->
    Alcotest.(check bool) "fixpoint property" true
      (List.for_all (fun r0 -> Height.equal (f r r0) (r r0)) rs)
  | None -> Alcotest.fail "no pointwise fixpoint"

module A = Resource.Agree (IntVal)
module F = Resource.Frac (IntVal)

let test_agree_ra () =
  let a = A.of_value 7 in
  (match A.compose a (A.of_value 7) with
  | Some r -> Alcotest.(check (option int)) "agree merges" (Some 7) (A.value r)
  | None -> Alcotest.fail "agreement refused");
  Alcotest.(check bool) "disagreement invalid" true
    (A.compose a (A.of_value 8) = None);
  Alcotest.(check bool) "unit neutral" true
    (match A.compose a A.unit with Some r -> A.equal r a | None -> false);
  Alcotest.(check bool) "splits recompose" true
    (List.for_all
       (fun (x, y) ->
         match A.compose x y with Some r -> A.equal r a | None -> false)
       (A.splits a))

let test_frac_ra () =
  let half = F.share ~num:1 ~den:2 3 in
  let quarter = F.share ~num:1 ~den:4 3 in
  (match F.compose half half with
  | Some w -> Alcotest.(check bool) "1/2 + 1/2 = whole" true (F.is_whole w)
  | None -> Alcotest.fail "halves refused");
  (match F.compose half quarter with
  | Some q ->
    Alcotest.(check bool) "3/4 not whole" false (F.is_whole q);
    (match F.compose q quarter with
    | Some w -> Alcotest.(check bool) "3/4 + 1/4 whole" true (F.is_whole w)
    | None -> Alcotest.fail "3/4 + 1/4 refused")
  | None -> Alcotest.fail "1/2 + 1/4 refused");
  Alcotest.(check bool) "over 1 invalid" true
    (F.compose (F.whole 3) half = None);
  Alcotest.(check bool) "different values refuse" true
    (F.compose half (F.share ~num:1 ~den:2 4) = None);
  Alcotest.(check bool) "normalization: 2/4 = 1/2" true
    (F.equal (F.share ~num:2 ~den:4 3) half)

let prop name gen print f =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count:200 ~name ~print gen f)

let properties =
  [
    prop "heap compose is commutative" (Q.Gen.pair heap_gen heap_gen)
      (fun (a, b) -> print_heap a ^ " / " ^ print_heap b)
      (fun (a, b) ->
        match H.compose a b, H.compose b a with
        | Some x, Some y -> H.equal x y
        | None, None -> true
        | Some _, None | None, Some _ -> false);
    prop "splits recompose" heap_gen print_heap (fun h ->
        List.for_all
          (fun (a, b) ->
            match H.compose a b with Some x -> H.equal x h | None -> false)
          (H.splits h));
    prop "splits are exhaustive (count = 2^n)" heap_gen print_heap (fun h ->
        List.length (H.splits h)
        = int_of_float (2. ** float_of_int (List.length (H.bindings h))));
    prop "credit splits recompose" Gen.small_ord Gen.print_ord (fun a ->
        List.for_all
          (fun (x, y) -> Ord.equal (Ord.hsum x y) a)
          (C.splits a));
    prop "sep is commutative on upreds" heap_gen print_heap (fun h ->
        let p = P.own (H.singleton 1 10) in
        let q = P.pure (Height.of_ord Ord.omega) in
        Height.equal (P.sep p q h) (P.sep q p h));
  ]

let suite =
  [
    Alcotest.test_case "heap resource algebra" `Quick test_heap_ra;
    Alcotest.test_case "credit resource algebra" `Quick test_credit_ra;
    Alcotest.test_case "agreement resource algebra" `Quick test_agree_ra;
    Alcotest.test_case "fractional resource algebra" `Quick test_frac_ra;
    Alcotest.test_case "uniform predicates" `Quick test_upred;
    Alcotest.test_case "later/sep commuting (finite split case)" `Quick
      test_later_sep_commuting;
    Alcotest.test_case "core laws and the □ modality" `Quick test_core_and_box;
    Alcotest.test_case "pointwise fixpoints" `Quick test_fixpoint_on;
  ]
  @ properties
