(* TerminationSHL: the strict-descent credit driver (Theorem 5.1),
   finite vs transfinite credits, TSplit composition, and the event-loop
   case study. *)

open Tfiris
open Termination
module Q = QCheck2
module Shl = Tfiris.Shl

let parse = Shl.Parser.parse_exn
let cfg src = Shl.Step.config (parse src)

let test_countdown_exact () =
  (* countdown with the exact step count succeeds with 0 left *)
  let e = parse "1 + 2 + 3" in
  let n = Option.get (Shl.Interp.steps_to_value e) in
  match Wp.run ~credits:(Ord.of_int n) Wp.countdown (Shl.Step.config e) with
  | Wp.Terminated (Shl.Ast.Int 6, left, st) ->
    Alcotest.(check bool) "credit exactly spent" true (Ord.is_zero left);
    Alcotest.(check int) "steps" n st.Wp.steps
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v

let test_countdown_insufficient () =
  match Wp.run ~credits:(Ord.of_int 3) Wp.countdown (cfg "1 + 2 + 3 + 4 + 5") with
  | Wp.Rejected (Wp.Gave_up, _) -> ()
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v

let test_adaptive_omega () =
  (* ω suffices for any terminating program via dynamic instantiation *)
  let fib12 = Shl.Ast.App (Shl.Prog.rec_of Shl.Prog.fib_template, Shl.Ast.int_ 12) in
  match Wp.run ~credits:Ord.omega (Wp.adaptive ()) (Shl.Step.config fib12) with
  | Wp.Terminated (Shl.Ast.Int 144, _, st) ->
    Alcotest.(check int) "exactly one limit refinement" 1 st.Wp.limit_refinements
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v

let test_diverging_never_accepted () =
  (* e_loop: no credit strategy can be accepted; the adaptive oracle
     gives up, and the checked descent guarantees the driver halts *)
  List.iter
    (fun credits ->
      match
        Wp.run ~credits (Wp.adaptive ~fuel:50_000 ())
          (Shl.Step.config Shl.Prog.e_loop)
      with
      | Wp.Terminated _ -> Alcotest.fail "e_loop accepted as terminating!"
      | Wp.Rejected _ -> ())
    [ Ord.omega; Ord.omega_pow Ord.omega; Ord.of_int 1000 ]

let test_descent_validated () =
  (* a cheating strategy that does not decrease is caught *)
  let cheat : Wp.strategy =
    {
      Wp.name = "cheat";
      spend = (fun ~step_no:_ ~config:_ ~kind:_ ~credit -> Some credit);
    }
  in
  match Wp.run ~credits:Ord.omega cheat (cfg "1 + 2") with
  | Wp.Rejected (Wp.Not_decreasing _, _) -> ()
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v

let test_stuck_rejected () =
  match Wp.run ~credits:Ord.omega (Wp.adaptive ()) (cfg "1 + true") with
  | Wp.Rejected (Wp.Stuck _, _) | Wp.Rejected (Wp.Gave_up, _) -> ()
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v

(* ---------- TSplit composition (§5.1) ---------- *)

let test_e_two () =
  let f = parse "fun u -> 1 + 2 + 3" in
  match Triple.e_two_spec f with
  | None -> Alcotest.fail "no spec"
  | Some spec -> (
    match Triple.verify spec with
    | Wp.Terminated (Shl.Ast.Int 12, _, _) -> ()
    | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v)

let test_dynamic_loop () =
  let u = parse "fun v -> 3 * 4" in
  let f = parse "fun u -> 2 + 2" in
  (match Triple.dynamic_spec ~u ~f with
  | None -> Alcotest.fail "no spec"
  | Some spec -> (
    match Triple.verify spec with
    | Wp.Terminated (Shl.Ast.Int _, _, st) ->
      Alcotest.(check bool) "used a limit refinement (learned k)" true
        (st.Wp.limit_refinements >= 1)
    | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v));
  (* the finite-credit baseline fails on a small fixed budget *)
  match Triple.dynamic_finite_attempt ~u ~f ~budget:30 with
  | Wp.Rejected (Wp.Gave_up, _) -> ()
  | v -> Alcotest.failf "finite attempt unexpectedly: %a" Wp.pp_verdict v

let test_split_pots_isolated () =
  (* pot 1 too small: the split strategy fails even though the total
     would cover — credits in one pot cannot pay the other's steps,
     exactly the resource discipline of ∗ *)
  let f = parse "fun u -> 1 + 2 + 3 + 4 + 5 + 6" in
  let boundary = Triple.left_operand_done in
  let tiny = Ord.of_int 2 in
  let big = Ord.of_int 500 in
  let strat =
    Triple.split_strategy ~boundary ~pot1:tiny ~pot2:big Wp.countdown
      Wp.countdown
  in
  match
    Wp.run ~credits:(Ord.hsum tiny big) strat
      (Shl.Step.config (Shl.Prog.e_two f))
  with
  | Wp.Rejected _ -> ()
  | Wp.Terminated _ -> Alcotest.fail "undersized pot must fail"

(* ---------- measured (lexicographic) strategies ---------- *)

module Nested = Tfiris_termination.Nested

let test_nested_measured () =
  let u = parse "fun v -> 2 + 2" in
  let f = parse "fun v -> 1 + 2" in
  (match Nested.verify ~u ~f () with
  | Wp.Terminated (Shl.Ast.Unit, _, st) ->
    Alcotest.(check bool) "several lexicographic drops" true
      (st.Wp.limit_refinements > 4)
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v);
  (* the finite baseline with a small budget fails *)
  match Nested.verify_finite ~budget:40 ~u ~f () with
  | Wp.Rejected (Wp.Gave_up, _) -> ()
  | v -> Alcotest.failf "finite unexpectedly: %a" Wp.pp_verdict v

let test_nested_zero_rounds () =
  (* u () = 0: the loop body never runs; the measure jumps ω³ → 0 *)
  let u = parse "fun v -> 0" in
  let f = parse "fun v -> 99" in
  match Nested.verify ~u ~f () with
  | Wp.Terminated (Shl.Ast.Unit, _, _) -> ()
  | v -> Alcotest.failf "unexpected: %a" Wp.pp_verdict v

let test_measured_rejects_bad_measure () =
  (* a measure that increases mid-run exhausts its pad and gives up;
     the run is still finite *)
  let bogus _cfg = Some Ord.omega in
  match
    Wp.run_measured ~measure:bogus ~pad:4 (Shl.Step.config Shl.Prog.e_loop)
  with
  | Wp.Rejected (_, st) ->
    Alcotest.(check bool) "stopped quickly" true (st.Wp.steps <= 10)
  | Wp.Terminated _ -> Alcotest.fail "e_loop accepted"

let test_measured_requires_limit_values () =
  (* successor-valued measures are refused: the pad argument would be
     unsound *)
  let succ_valued _ = Some (Ord.succ Ord.omega) in
  match
    Wp.run_measured ~measure:succ_valued ~pad:4
      (Shl.Step.config (parse "1 + 2"))
  with
  | Wp.Rejected _ -> ()
  | Wp.Terminated _ -> Alcotest.fail "successor-valued measure accepted"

let test_ackermann () =
  let e m n = Shl.Ast.app2 Shl.Prog.ack (Shl.Ast.int_ m) (Shl.Ast.int_ n) in
  (* oracle-free sanity: values match the OCaml spec *)
  List.iter
    (fun (m, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "ack %d %d" m n)
        true
        (Shl.Interp.eval ~fuel:50_000_000 (e m n)
        = Some (Shl.Ast.Int (Shl.Prog.ack_spec m n))))
    [ (0, 0); (1, 3); (2, 3); (3, 3) ];
  (* $ω^ω suffices (the classical bound) *)
  match
    Wp.run ~credits:(Ord.omega_pow Ord.omega) (Wp.adaptive ())
      (Shl.Step.config (e 2 3))
  with
  | Wp.Terminated (Shl.Ast.Int 9, _, _) -> ()
  | v -> Alcotest.failf "ack verification: %a" Wp.pp_verdict v

(* ---------- event loop (§5.2, E7) ---------- *)

let test_event_loop_reentrant () =
  List.iter
    (fun (n, m) ->
      match Event_loop.verify_client (Event_loop.reentrant_client ~n ~m) with
      | Wp.Terminated (Shl.Ast.Unit, _, _) -> ()
      | v ->
        Alcotest.failf "client(%d,%d) unexpected: %a" n m Wp.pp_verdict v)
    [ (0, 0); (1, 5); (4, 3); (6, 6) ]

let test_event_loop_dynamic () =
  let u = parse "fun v -> 6 * 7" in
  (match Event_loop.verify_client (Event_loop.dynamic_client ~u) with
  | Wp.Terminated (Shl.Ast.Unit, _, _) -> ()
  | v -> Alcotest.failf "dynamic client unexpected: %a" Wp.pp_verdict v);
  (* a fixed finite budget chosen without knowing u's result fails *)
  match
    Event_loop.verify_client_finite ~budget:60 (Event_loop.dynamic_client ~u)
  with
  | Wp.Rejected (Wp.Gave_up, _) -> ()
  | v -> Alcotest.failf "finite budget unexpectedly: %a" Wp.pp_verdict v

(* ---------- properties ---------- *)

let theorem_5_1_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:150
       ~name:"Theorem 5.1: accepted runs really terminate (replayed)"
       ~print:Gen.print_shl Gen.shl_expr
       (fun e ->
         match
           Wp.run ~credits:Ord.omega
             (Wp.adaptive ~fuel:2000 ())
             (Shl.Step.config e)
         with
         | Wp.Terminated (v, _, _) -> (
           (* independent replay reaches the same value *)
           match Shl.Interp.eval ~fuel:5000 e with
           | Some v' -> v = v'
           | None -> false)
         | Wp.Rejected _ -> true))

let countdown_tight_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:150
       ~name:"finite credits: n steps need exactly n credits"
       ~print:Gen.print_shl Gen.shl_expr
       (fun e ->
         match Shl.Interp.steps_to_value ~fuel:2000 e with
         | None -> true
         | Some n ->
           let run k =
             match
               Wp.run ~credits:(Ord.of_int k) Wp.countdown (Shl.Step.config e)
             with
             | Wp.Terminated _ -> true
             | Wp.Rejected _ -> false
           in
           run n && ((n = 0) || not (run (n - 1)))))

let suite =
  [
    Alcotest.test_case "countdown with exact credit" `Quick test_countdown_exact;
    Alcotest.test_case "countdown with insufficient credit" `Quick
      test_countdown_insufficient;
    Alcotest.test_case "$ω adaptive verifies fib" `Quick test_adaptive_omega;
    Alcotest.test_case "diverging programs never accepted" `Quick
      test_diverging_never_accepted;
    Alcotest.test_case "descent is validated" `Quick test_descent_validated;
    Alcotest.test_case "stuck programs rejected" `Quick test_stuck_rejected;
    Alcotest.test_case "TSplit: e_two (§5.1)" `Quick test_e_two;
    Alcotest.test_case "TSplit: dynamic loop with $(ω ⊕ n_u)" `Quick
      test_dynamic_loop;
    Alcotest.test_case "TSplit: pots are isolated" `Quick
      test_split_pots_isolated;
    Alcotest.test_case "measured strategy: nested dynamic loops" `Quick
      test_nested_measured;
    Alcotest.test_case "measured strategy: zero rounds" `Quick
      test_nested_zero_rounds;
    Alcotest.test_case "measured strategy: bad measures rejected" `Quick
      test_measured_rejects_bad_measure;
    Alcotest.test_case "measured strategy: limit values required" `Quick
      test_measured_requires_limit_values;
    Alcotest.test_case "Ackermann with $ω^ω" `Slow test_ackermann;
    Alcotest.test_case "event loop: reentrant clients" `Slow
      test_event_loop_reentrant;
    Alcotest.test_case "event loop: dynamic reentrancy" `Quick
      test_event_loop_dynamic;
    theorem_5_1_prop;
    countdown_tight_prop;
  ]
