(* The SHL type system: inference unit tests (positive and negative),
   principal types of the program library, and the fundamental theorem
   connecting syntactic typing to the safety logical relation. *)

module Q = QCheck2
module Shl = Tfiris.Shl
module Types = Tfiris.Shl.Types
module Logrel = Tfiris.Safety.Logrel

let parse = Shl.Parser.parse_exn

let infer_str src =
  match Types.infer (parse src) with
  | Ok t -> Types.ty_to_string t
  | Error m -> "ERROR: " ^ m

let check_ty src expected =
  Alcotest.(check string) src expected (infer_str src)

let rejected src =
  match Types.infer (parse src) with
  | Ok t -> Alcotest.failf "%s unexpectedly typed at %s" src (Types.ty_to_string t)
  | Error _ -> ()

let test_infer_ground () =
  check_ty "1 + 2" "int";
  check_ty "1 < 2" "bool";
  check_ty "()" "unit";
  check_ty "(1, true)" "(int * bool)";
  check_ty "fst (1, true)" "int";
  check_ty "snd (1, true)" "bool";
  check_ty "not true" "bool";
  check_ty "-5" "int";
  check_ty "if 1 < 2 then 3 else 4" "int"

let test_infer_functions () =
  check_ty "fun x -> x + 1" "(int -> int)";
  (* unconstrained variables default to unit *)
  check_ty "fun x -> x" "(unit -> unit)";
  check_ty "fun f -> f 1 + 2" "((int -> int) -> int)";
  check_ty "rec f n. if n = 0 then 1 else n * f (n - 1)" "(int -> int)";
  check_ty "let twice = fun f x -> f (f x) in twice (fun n -> n + 1) 0" "int"

let test_infer_heap () =
  check_ty "ref 1" "ref int";
  check_ty "!(ref 1)" "int";
  check_ty "let r = ref 1 in r := 2" "unit";
  check_ty "let r = ref (fun x -> x + 1) in (!r) 3" "int";
  check_ty "ref (ref true)" "ref ref bool"

let test_infer_sums () =
  check_ty "inl 3" "(int + unit)";
  check_ty "match inl 3 with | inl x -> x + 1 | inr y -> 0 end" "int";
  check_ty
    "fun s -> match s with | inl x -> x | inr y -> if y then 1 else 0 end"
    "((int + bool) -> int)"

let test_infer_rejections () =
  rejected "1 + true";
  rejected "if 1 then 2 else 3";
  rejected "fst 3";
  rejected "!5";
  rejected "(fun x -> x x) (fun x -> x x)";
  (* occurs check *)
  rejected "true = true";
  (* Eq restricted to int in the typed fragment *)
  rejected "#0 := 1";
  (* location literals are untyped *)
  rejected "(ref 0) +l 1";
  (* pointer arithmetic is untyped *)
  rejected "x + 1" (* unbound *)

let test_program_library_types () =
  (* the paper's programs that live inside the typed fragment *)
  check_ty "rec loop f x. if f () then loop f x else ()"
    "((unit -> bool) -> (unit -> unit))";
  (match Types.infer Shl.Prog.ack with
  | Ok t ->
    Alcotest.(check string) "ackermann" "(int -> (int -> int))"
      (Types.ty_to_string t)
  | Error m -> Alcotest.failf "ack: %s" m);
  (* fib template: ((int -> int) -> int -> int) *)
  match Types.infer Shl.Prog.fib_template with
  | Ok t ->
    Alcotest.(check string) "fib template" "((int -> int) -> (int -> int))"
      (Types.ty_to_string t)
  | Error m -> Alcotest.failf "fib template: %s" m

let test_landin_typed () =
  (* the knot is well-typed at unit — and diverges: typing does not
     imply termination in the presence of higher-order store *)
  match Types.infer Logrel.landins_knot with
  | Ok t -> Alcotest.(check string) "knot type" "unit" (Types.ty_to_string t)
  | Error m -> Alcotest.failf "knot: %s" m

(* ---------- the fundamental theorem ---------- *)

let fundamental_generated_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:250
       ~name:"fundamental thm: generated well-typed programs are safe"
       ~print:Gen.print_shl Gen.typed_shl_int
       (fun e ->
         (* by-construction typed at int *)
         (match Types.infer e with
         | Ok Types.T_int -> true
         | Ok _ | Error _ -> false)
         && Logrel.fundamental ~fuel:3000 e))

let fundamental_random_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:300
       ~name:"fundamental thm: random programs (vacuous when ill-typed)"
       ~print:Gen.print_shl Gen.shl_expr
       (fun e -> Logrel.fundamental ~fuel:1500 e))

let progress_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:250
       ~name:"type soundness: well-typed programs never get stuck"
       ~print:Gen.print_shl Gen.typed_shl_int
       (fun e ->
         match Shl.Interp.exec ~fuel:3000 e with
         | Shl.Interp.Stuck _, _ -> false
         | (Shl.Interp.Value _ | Shl.Interp.Out_of_fuel _), _ -> true))

let suite =
  [
    Alcotest.test_case "inference: ground" `Quick test_infer_ground;
    Alcotest.test_case "inference: functions" `Quick test_infer_functions;
    Alcotest.test_case "inference: heap" `Quick test_infer_heap;
    Alcotest.test_case "inference: sums" `Quick test_infer_sums;
    Alcotest.test_case "inference: rejections" `Quick test_infer_rejections;
    Alcotest.test_case "program library types" `Quick
      test_program_library_types;
    Alcotest.test_case "Landin's knot is typed (and diverges)" `Quick
      test_landin_typed;
    fundamental_generated_prop;
    fundamental_random_prop;
    progress_prop;
  ]
