(* Ordinal arithmetic: unit tests on classical identities and qcheck
   property tests for the algebraic laws. *)

open Tfiris
module Q = QCheck2

let w = Ord.omega
let ( + ) = Ord.add
let ( * ) = Ord.mul
let ( +! ) = Ord.hsum
let i = Ord.of_int

let check_ord name expected actual =
  Alcotest.(check string) name (Ord.to_string expected) (Ord.to_string actual)

let test_classics () =
  check_ord "1 + ω = ω" w (i 1 + w);
  check_ord "ω + 1 > ω" (Ord.succ w) (w + i 1);
  check_ord "2·ω = ω" w (i 2 * w);
  check_ord "ω·2 = ω + ω" (w + w) (w * i 2);
  check_ord "(ω+1)·ω = ω²" (Ord.omega_pow Ord.two) (Ord.succ w * w);
  check_ord "(ω+1)·2 = ω·2+1" ((w * i 2) + i 1) (Ord.succ w * i 2);
  check_ord "ω·0 = 0" Ord.zero (w * Ord.zero);
  check_ord "0·ω = 0" Ord.zero (Ord.zero * w);
  check_ord "ω^0 = 1" Ord.one (Ord.omega_pow Ord.zero);
  check_ord "ω^1 = ω" w (Ord.omega_pow Ord.one)

let test_hessenberg_classics () =
  check_ord "1 ⊕ ω = ω + 1" (w + i 1) (Ord.hsum (i 1) w);
  check_ord "(ω+3) ⊕ (ω+4) = ω·2+7" ((w * i 2) + i 7) (Ord.hsum (w + i 3) (w + i 4));
  check_ord "(ω+2) ⊗ (ω+3) = ω²+ω·5+6"
    (Ord.omega_pow Ord.two + (w * i 5) + i 6)
    (Ord.hprod (w + i 2) (w + i 3))

let test_structure () =
  Alcotest.(check bool) "ω is a limit" true (Ord.is_limit w);
  Alcotest.(check bool) "ω+1 is a successor" true (Ord.is_succ (Ord.succ w));
  Alcotest.(check bool) "0 is neither" false (Ord.is_limit Ord.zero || Ord.is_succ Ord.zero);
  Alcotest.(check (option int)) "to_int 7" (Some 7) (Ord.to_int_opt (i 7));
  Alcotest.(check (option int)) "to_int ω" None (Ord.to_int_opt w);
  Alcotest.(check int) "nat_part (ω·2+5)" 5 (Ord.nat_part ((w * i 2) + i 5));
  check_ord "limit_part (ω·2+5)" (w * i 2) (Ord.limit_part ((w * i 2) + i 5));
  check_ord "degree (ω²·3 + ω)" Ord.two (Ord.degree (Ord.omega_pow Ord.two * i 3 + w))

let test_sub () =
  check_ord "(ω·2+5) - (ω+3) = ω+5" (w + i 5) (Ord.sub ((w * i 2) + i 5) (w + i 3));
  check_ord "a - a = 0" Ord.zero (Ord.sub w w);
  check_ord "smaller - larger = 0" Ord.zero (Ord.sub (i 3) w)

let test_fundamental () =
  check_ord "ω[5] = 5" (i 5) (Ord.fundamental w 5);
  check_ord "ω²[3] = ω·3" (w * i 3) (Ord.fundamental (Ord.omega_pow Ord.two) 3);
  check_ord "ω^ω[2] = ω²" (Ord.omega_pow Ord.two) (Ord.fundamental (Ord.omega_pow w) 2);
  check_ord "(ω²+ω)[4] = ω²+4" (Ord.omega_pow Ord.two + i 4)
    (Ord.fundamental (Ord.omega_pow Ord.two + w) 4);
  Alcotest.check_raises "fundamental of successor"
    (Invalid_argument "Ord.fundamental: not a limit") (fun () ->
      ignore (Ord.fundamental (Ord.succ w) 1))

let test_pow () =
  check_ord "2^ω = ω" w (Ord.pow (i 2) w);
  check_ord "2^(ω²) = ω^ω" (Ord.omega_pow w) (Ord.pow (i 2) (Ord.omega_pow Ord.two));
  check_ord "ω^ω (via pow)" (Ord.omega_pow w) (Ord.pow w w);
  check_ord "(ω·2)² = ω²·2" (Ord.omega_pow Ord.two * i 2) (Ord.pow (w * i 2) (i 2));
  check_ord "ω^(ω+2) = ω^ω·ω²" (Ord.omega_pow (w + i 2)) (Ord.pow w (w + i 2));
  check_ord "3^(ω·2+3) = ω²·27" (Ord.omega_pow Ord.two * i 27)
    (Ord.pow (i 3) ((w * i 2) + i 3));
  check_ord "a^0 = 1" Ord.one (Ord.pow w Ord.zero);
  check_ord "0^ω = 0" Ord.zero (Ord.pow Ord.zero w);
  check_ord "1^ω = 1" Ord.one (Ord.pow Ord.one w);
  check_ord "2^10 = 1024" (i 1024) (Ord.pow (i 2) (i 10))

let test_goodstein () =
  (* the textbook G(3) sequence *)
  Alcotest.(check (list (pair int int)))
    "G(3) values"
    [ (2, 3); (3, 3); (4, 3); (5, 2); (6, 1); (7, 0) ]
    (Goodstein.sequence 3);
  (* hereditary representation roundtrips *)
  List.iter
    (fun (base, n) ->
      Alcotest.(check int)
        (Printf.sprintf "roundtrip %d base %d" n base)
        n
        (Goodstein.of_hereditary ~base (Goodstein.to_hereditary ~base n)))
    [ (2, 0); (2, 1); (2, 100); (3, 81); (5, 12345); (2, 266) ];
  (* ordinal shadows *)
  check_ord "ord of 3 base 2 = ω+1" (w + i 1) (Goodstein.ordinal_of ~base:2 3);
  (* 266 = 2^(2^(2+1)) + 2^(2+1) + 2 — the classic example *)
  check_ord "ord of 266 base 2 = ω^ω^(ω+1) + ω^(ω+1) + ω"
    (Ord.omega_pow (Ord.omega_pow (w + i 1)) + Ord.omega_pow (w + i 1) + w)
    (Goodstein.ordinal_of ~base:2 266)

let test_descent () =
  Alcotest.(check int) "descent ω·2" 4 (Ord.descent_depth (w * i 2));
  Alcotest.(check int) "descent 10" 10 (Ord.descent_depth (i 10));
  Alcotest.(check int) "descent 0" 0 (Ord.descent_depth Ord.zero)

let test_printing () =
  Alcotest.(check string) "zero" "0" (Ord.to_string Ord.zero);
  Alcotest.(check string) "omega" "\xcf\x89" (Ord.to_string w);
  Alcotest.(check string) "tower" "\xcf\x89^\xcf\x89^\xcf\x89" (Ord.to_string (Ord.omega_tower 3));
  Alcotest.(check string) "compound" "\xcf\x89^(\xcf\x89 + 1)\xc2\xb72 + \xcf\x89^2 + 3"
    (Ord.to_string (Ord.omega_pow (Ord.succ w) * i 2 + Ord.omega_pow Ord.two + i 3))

(* ---------- properties ---------- *)

let prop name gen print f =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:300 ~name ~print gen f)

let prop2 name g1 p1 g2 p2 f =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:300 ~name
       ~print:(fun (a, b) -> Printf.sprintf "(%s, %s)" (p1 a) (p2 b))
       (Q.Gen.pair g1 g2) f)

let prop3 name g p f =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:300 ~name
       ~print:(fun (a, b, c) -> Printf.sprintf "(%s, %s, %s)" (p a) (p b) (p c))
       (Q.Gen.triple g g g) f)

let properties =
  [
    prop "compare is reflexive" Gen.ord Gen.print_ord (fun a ->
        Ord.compare a a = 0);
    prop3 "compare is transitive" Gen.ord Gen.print_ord (fun (a, b, c) ->
        let sorted = List.sort Ord.compare [ a; b; c ] in
        match sorted with
        | [ x; y; z ] -> Ord.le x y && Ord.le y z && Ord.le x z
        | _ -> false);
    prop2 "add is monotone right" Gen.ord Gen.print_ord Gen.ord Gen.print_ord
      (fun (a, b) -> Ord.le a (Ord.add a b) && Ord.le b (Ord.add a b));
    prop3 "add is associative" Gen.ord Gen.print_ord (fun (a, b, c) ->
        Ord.equal (Ord.add (Ord.add a b) c) (Ord.add a (Ord.add b c)));
    prop3 "hsum is associative" Gen.ord Gen.print_ord (fun (a, b, c) ->
        Ord.equal (Ord.hsum (Ord.hsum a b) c) (Ord.hsum a (Ord.hsum b c)));
    prop2 "hsum is commutative" Gen.ord Gen.print_ord Gen.ord Gen.print_ord
      (fun (a, b) -> Ord.equal (Ord.hsum a b) (Ord.hsum b a));
    prop2 "hsum is strictly monotone" Gen.ord Gen.print_ord Gen.ord
      Gen.print_ord (fun (a, b) ->
        Ord.is_zero b || Ord.lt a (Ord.hsum a b));
    prop3 "hsum is cancellative" Gen.ord Gen.print_ord (fun (a, b, c) ->
        (not (Ord.equal (Ord.hsum a c) (Ord.hsum b c))) || Ord.equal a b);
    prop2 "hprod is commutative" Gen.ord Gen.print_ord Gen.ord Gen.print_ord
      (fun (a, b) -> Ord.equal (Ord.hprod a b) (Ord.hprod b a));
    prop3 "hprod distributes over hsum" Gen.ord Gen.print_ord
      (fun (a, b, c) ->
        Ord.equal
          (Ord.hprod a (Ord.hsum b c))
          (Ord.hsum (Ord.hprod a b) (Ord.hprod a c)));
    prop2 "add and hsum agree on naturals" (Q.Gen.int_bound 100)
      string_of_int (Q.Gen.int_bound 100) string_of_int (fun (a, b) ->
        Ord.equal
          (Ord.add (Ord.of_int a) (Ord.of_int b))
          (Ord.hsum (Ord.of_int a) (Ord.of_int b)));
    prop2 "mul and hprod agree on naturals" (Q.Gen.int_range 0 40)
      string_of_int (Q.Gen.int_range 0 40) string_of_int (fun (a, b) ->
        Ord.equal
          (Ord.mul (Ord.of_int a) (Ord.of_int b))
          (Ord.hprod (Ord.of_int a) (Ord.of_int b)));
    prop2 "sub inverts add" Gen.ord Gen.print_ord Gen.ord Gen.print_ord
      (fun (a, b) -> Ord.equal (Ord.add b (Ord.sub (Ord.add b a) b)) (Ord.add b a));
    prop "succ is strictly increasing" Gen.ord Gen.print_ord (fun a ->
        Ord.lt a (Ord.succ a));
    prop "pred inverts succ" Gen.ord Gen.print_ord (fun a ->
        match Ord.pred (Ord.succ a) with
        | Some b -> Ord.equal a b
        | None -> false);
    prop "fundamental sequences are increasing and below" Gen.ord
      Gen.print_ord (fun a ->
        (not (Ord.is_limit a))
        ||
        let f n = Ord.fundamental a n in
        Ord.lt (f 1) (f 2) && Ord.lt (f 2) (f 3) && Ord.lt (f 3) a);
    prop "descend is strictly decreasing" Gen.ord Gen.print_ord (fun a ->
        Ord.is_zero a || Ord.lt (Ord.descend a) a);
    prop "limit_part + nat_part reassemble" Gen.ord Gen.print_ord (fun a ->
        Ord.equal a (Ord.add (Ord.limit_part a) (Ord.of_int (Ord.nat_part a))));
    prop "printing roundtrips through compare" Gen.ord Gen.print_ord
      (fun a ->
        (* equal ordinals print equally; used as a sanity on the pp *)
        String.equal (Ord.to_string a) (Ord.to_string (Ord.hsum a Ord.zero)));
    prop2 "pow is monotone in the exponent" Gen.small_ord Gen.print_ord
      Gen.small_ord Gen.print_ord (fun (a, b) ->
        Ord.le (Ord.pow Ord.two a) (Ord.pow Ord.two (Ord.add a b)));
    prop3 "pow: a^(b+c) = a^b · a^c" Gen.small_ord Gen.print_ord
      (fun (a, b, c) ->
        Ord.is_zero a
        || Ord.equal
             (Ord.pow a (Ord.add b c))
             (Ord.mul (Ord.pow a b) (Ord.pow a c)));
    QCheck_alcotest.to_alcotest
      (Q.Test.make ~count:100 ~name:"Goodstein ordinal trace strictly descends"
         ~print:string_of_int
         (Q.Gen.int_range 1 40)
         (fun n ->
           let tr = Goodstein.ordinal_trace ~max_len:24 n in
           let rec decreasing = function
             | a :: (b :: _ as rest) -> Ord.lt b a && decreasing rest
             | [ _ ] | [] -> true
           in
           decreasing tr));
    QCheck_alcotest.to_alcotest
      (Q.Test.make ~count:300 ~name:"hereditary representation roundtrips"
         ~print:(fun (b, n) -> Printf.sprintf "base %d, %d" b n)
         (Q.Gen.pair (Q.Gen.int_range 2 6) (Q.Gen.int_range 0 10_000))
         (fun (base, n) ->
           Goodstein.of_hereditary ~base (Goodstein.to_hereditary ~base n) = n));
  ]

let suite =
  [
    Alcotest.test_case "classical identities" `Quick test_classics;
    Alcotest.test_case "hessenberg identities" `Quick test_hessenberg_classics;
    Alcotest.test_case "structure predicates" `Quick test_structure;
    Alcotest.test_case "subtraction" `Quick test_sub;
    Alcotest.test_case "exponentiation" `Quick test_pow;
    Alcotest.test_case "Goodstein sequences" `Quick test_goodstein;
    Alcotest.test_case "fundamental sequences" `Quick test_fundamental;
    Alcotest.test_case "descent" `Quick test_descent;
    Alcotest.test_case "printing" `Quick test_printing;
  ]
  @ properties
