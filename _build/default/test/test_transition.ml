(* Abstract simulations (§2): gfp vs step-indexed approximations on
   finite systems, adequacy against brute-force refinement checking, and
   the t∞ ⪯ s<∞ counterexample. *)

open Tfiris
module Q = QCheck2

(* A deterministic 3-step terminating system: 0 → 1 → 2 (= true). *)
let straight =
  Ts.make ~num_states:3 ~initial:0 ~edges:[ (0, 1); (1, 2) ]
    ~results:[ (2, true) ]

(* A looping system. *)
let looping = Ts.make ~num_states:1 ~initial:0 ~edges:[ (0, 0) ] ~results:[]

(* Nondeterministic: may terminate true or loop. *)
let maybe =
  Ts.make ~num_states:3 ~initial:0 ~edges:[ (0, 1); (0, 2); (2, 2) ]
    ~results:[ (1, true) ]

let test_ts_basics () =
  Alcotest.(check bool) "straight evaluates to true" true
    (Ts.evaluates_to straight true);
  Alcotest.(check bool) "straight does not diverge" false (Ts.diverges straight);
  Alcotest.(check bool) "looping diverges" true (Ts.diverges looping);
  Alcotest.(check bool) "maybe does both" true
    (Ts.evaluates_to maybe true && Ts.diverges maybe)

let test_refinement_checkers () =
  Alcotest.(check bool) "straight result-refines maybe" true
    (Ts.result_refinement ~target:straight ~source:maybe);
  Alcotest.(check bool) "looping TP-refines maybe" true
    (Ts.tp_refinement ~target:looping ~source:maybe);
  Alcotest.(check bool) "looping does NOT TP-refine straight" false
    (Ts.tp_refinement ~target:looping ~source:straight)

let test_simulation_basics () =
  Alcotest.(check bool) "straight ⪯ straight" true
    (Simulation.simulates ~target:straight ~source:straight);
  Alcotest.(check bool) "looping ⪯ looping" true
    (Simulation.simulates ~target:looping ~source:looping);
  Alcotest.(check bool) "looping ⪯ maybe (via the loop branch)" true
    (Simulation.simulates ~target:looping ~source:maybe);
  Alcotest.(check bool) "straight ⋠ looping (no result)" false
    (Simulation.simulates ~target:straight ~source:looping)

let test_approximations () =
  (* ⪯₀ is full; the chain is decreasing; it stabilizes at the gfp *)
  let r0 = Simulation.approx ~target:straight ~source:looping 0 in
  Alcotest.(check bool) "⪯₀ relates everything" true
    (Simulation.holds r0 straight looping);
  let gfp, stage = Simulation.gfp ~target:straight ~source:looping in
  Alcotest.(check bool) "stabilizes within |T|·|S| stages" true
    (stage <= 3 * 1);
  let at_stage = Simulation.approx ~target:straight ~source:looping stage in
  Alcotest.(check bool) "approx at stage = gfp" true
    (Simulation.rel_equal gfp at_stage);
  (* ordinal-indexed: ω gives the gfp on finite systems *)
  let at_omega = Simulation.approx_ord ~target:straight ~source:looping Ord.omega in
  Alcotest.(check bool) "⪯_ω = gfp" true (Simulation.rel_equal gfp at_omega)

let test_replay () =
  match Simulation.replay ~target:straight ~source:straight [ 0; 1; 2 ] with
  | Some run -> Alcotest.(check (list int)) "lockstep replay" [ 0; 1; 2 ] run
  | None -> Alcotest.fail "replay failed"

(* ---------- §2.3 counterexample ---------- *)

let test_counterexample () =
  let r = Counterexample.run ~indices:64 ~max_pick:256 () in
  Alcotest.(check bool) "t∞ ⪯ᵢ s<∞ for all finite i" true r.approx_all_hold;
  Alcotest.(check bool) "witnesses are incoherent" true r.witnesses_incoherent;
  Alcotest.(check bool) "s<∞ always terminates" true r.source_always_terminates

let test_counterexample_runs () =
  (* Pick, Run 5 … Run 0, Done: 8 states *)
  Alcotest.(check int) "run picking 5 has length 8"
    8 (Counterexample.run_length_of_pick 5);
  Alcotest.(check bool) "run lengths grow with the pick" true
    (Counterexample.run_length_of_pick 10 < Counterexample.run_length_of_pick 20);
  Alcotest.(check (option int)) "witness for i=8 picks 7" (Some 7)
    (Counterexample.first_pick (Counterexample.witness_run 8))

(* ---------- Lemma 2.3: measured systems (Goodstein, Hydra) ---------- *)

let test_measure_validate () =
  (* a correct countdown measure validates; an off-by-one one does not *)
  let countdown : int Measure.t =
    {
      Measure.state_pp = Format.pp_print_int;
      step = (fun n -> if n = 0 then [] else [ n - 1 ]);
      measure = (fun n -> Ord.of_int n);
    }
  in
  (match Measure.validate countdown 10 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "countdown measure wrongly refuted"
  | Error m -> Alcotest.fail m);
  let broken = { countdown with Measure.measure = (fun n -> Ord.of_int (n / 2)) } in
  match Measure.validate broken 10 with
  | Ok (Some v) ->
    Alcotest.(check bool) "violation reported with equal measures" true
      (Ord.equal v.Measure.from_measure v.Measure.to_measure)
  | Ok None -> Alcotest.fail "broken measure wrongly validated"
  | Error m -> Alcotest.fail m

let test_measure_run_rejects_cheat () =
  (* a system that does not decrease is stopped, not spun *)
  let cheat : int Measure.t =
    {
      Measure.state_pp = Format.pp_print_int;
      step = (fun n -> [ n + 1 ]);
      measure = (fun _ -> Ord.omega);
    }
  in
  match Measure.run cheat ~choose:List.hd 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-descending run accepted"

let test_hydra_dies () =
  List.iter
    (fun (h, regrow, choose, name) ->
      match Hydra.play ~regrow ~choose h with
      | Ok n -> Alcotest.(check bool) (name ^ " takes chops") true (n > 0)
      | Error _ -> Alcotest.failf "%s: measure violation" name)
    [
      (Hydra.bush ~width:2 ~depth:2, 2, Hydra.choose_first, "bush greedy");
      (Hydra.bush ~width:2 ~depth:2, 3, Hydra.choose_fattest, "bush adversarial");
      (Hydra.line 1, 5, Hydra.choose_fattest, "line heavy regrow");
    ]

let test_hydra_measure () =
  Alcotest.(check string) "μ(bush 2x2) = ω²·2" "\xcf\x89^2\xc2\xb72"
    (Ord.to_string (Hydra.measure (Hydra.bush ~width:2 ~depth:2)));
  Alcotest.(check string) "μ(line 3) = ω^ω^ω" "\xcf\x89^\xcf\x89^\xcf\x89"
    (Ord.to_string (Hydra.measure (Hydra.line 3)));
  Alcotest.(check string) "μ(leaf) = 0" "0" (Ord.to_string (Hydra.measure Hydra.leaf))

let hydra_descent_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:60 ~name:"every chop strictly decreases μ"
       ~print:(fun (w, r) -> Printf.sprintf "width %d, regrow %d" w r)
       (Q.Gen.pair (Q.Gen.int_range 1 3) (Q.Gen.int_range 1 3))
       (fun (width, regrow) ->
         let h = Hydra.bush ~width ~depth:2 in
         let m = Hydra.measure h in
         List.for_all
           (fun h' -> Ord.lt (Hydra.measure h') m)
           (Hydra.chops ~regrow h)))

(* ---------- properties: simulation adequacy on random systems ---------- *)

let prop name f =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:400 ~name
       ~print:(fun (a, b) -> Gen.print_ts a ^ " vs " ^ Gen.print_ts b)
       (Q.Gen.pair Gen.finite_ts Gen.finite_ts)
       f)

let properties =
  [
    prop "Lemma 2.1: gfp simulation implies result refinement"
      (fun (target, source) ->
        (not (Simulation.simulates ~target ~source))
        || Ts.result_refinement ~target ~source);
    prop "Lemma 2.2 (finite case): gfp simulation implies TP refinement"
      (fun (target, source) ->
        (* On finite systems the coinductive simulation transfers
           divergence: replaying a lasso yields a source lasso. *)
        (not (Simulation.simulates ~target ~source))
        || Ts.tp_refinement ~target ~source);
    prop "approximation chain is decreasing" (fun (target, source) ->
        let r1 = Simulation.approx ~target ~source 1 in
        let r2 = Simulation.approx ~target ~source 2 in
        let r3 = Simulation.approx ~target ~source 3 in
        let included a b =
          (* b ⊆ a pointwise *)
          Array.for_all2
            (fun ra rb -> Array.for_all2 (fun x y -> (not y) || x) ra rb)
            a b
        in
        included r1 r2 && included r2 r3);
    prop "gfp = intersection of finite approximations (finite systems)"
      (fun (target, source) ->
        let gfp, stage = Simulation.gfp ~target ~source in
        Simulation.rel_equal gfp (Simulation.approx ~target ~source (stage + 5)));
    prop "gfp is a post-fixpoint" (fun (target, source) ->
        let gfp, _ = Simulation.gfp ~target ~source in
        Simulation.rel_equal gfp (Simulation.unfold ~target ~source gfp));
    prop "reflexivity of simulation (stuck-free systems)" (fun (target, _) ->
        (* a stuck non-value state simulates nothing, not even itself;
           reflexivity holds for systems without reachable stuck states *)
        let has_stuck =
          List.exists
            (fun s -> target.Ts.step s = [] && target.Ts.result s = None)
            (List.init target.Ts.num_states Fun.id)
        in
        has_stuck || Simulation.simulates ~target ~source:target);
  ]

let suite =
  [
    Alcotest.test_case "transition system basics" `Quick test_ts_basics;
    Alcotest.test_case "brute-force refinement checkers" `Quick
      test_refinement_checkers;
    Alcotest.test_case "simulation gfp basics" `Quick test_simulation_basics;
    Alcotest.test_case "step-indexed approximations" `Quick test_approximations;
    Alcotest.test_case "source run replay" `Quick test_replay;
    Alcotest.test_case "§2.3 counterexample report" `Quick test_counterexample;
    Alcotest.test_case "§2.3 counterexample runs" `Quick
      test_counterexample_runs;
    Alcotest.test_case "Lemma 2.3: measure validation" `Quick
      test_measure_validate;
    Alcotest.test_case "Lemma 2.3: descent enforced at run time" `Quick
      test_measure_run_rejects_cheat;
    Alcotest.test_case "hydra always dies" `Quick test_hydra_dies;
    Alcotest.test_case "hydra measures" `Quick test_hydra_measure;
    hydra_descent_prop;
  ]
  @ properties
