(* The linear async-channel language (§5.2): typing (positive and
   negative), scheduler semantics, the termination theorem over a
   generator of well-typed programs, and the polymorphic extension. *)

open Tfiris
open Promises
module Q = QCheck2
open Syntax

let typechecks e = Typing.well_typed e

let eval_int name e expected =
  match Semantics.eval e with
  | Some (Int n) -> Alcotest.(check int) name expected n
  | Some v -> Alcotest.failf "%s: got %s" name (Syntax.to_string v)
  | None -> Alcotest.failf "%s: no value" name

(* ---------- typing: positives ---------- *)

let test_typing_positive () =
  Alcotest.(check bool) "simple promise" true
    (typechecks Termination.simple_promise);
  Alcotest.(check bool) "chain" true (typechecks (Termination.chain 5));
  Alcotest.(check bool) "fan" true (typechecks (Termination.fan 5));
  Alcotest.(check bool) "nested" true (typechecks Termination.nested);
  Alcotest.(check bool) "poly id" true (typechecks Termination.poly_id);
  Alcotest.(check bool) "impredicative self-application" true
    (typechecks Termination.impredicative_self);
  Alcotest.(check bool) "promise of a polymorphic value" true
    (typechecks Termination.poly_promise);
  (match Typing.typecheck Termination.simple_promise with
  | Ok T_int -> ()
  | Ok t -> Alcotest.failf "wrong type %s" (Format.asprintf "%a" pp_ty t)
  | Error e -> Alcotest.failf "rejected: %a" Typing.pp_error e);
  match Typing.typecheck (Post (Int 1)) with
  | Ok (T_chan T_int) -> ()
  | Ok t -> Alcotest.failf "wrong type %s" (Format.asprintf "%a" pp_ty t)
  | Error e -> Alcotest.failf "rejected: %a" Typing.pp_error e

(* ---------- typing: negatives ---------- *)

let test_typing_negative () =
  let rejected name e =
    Alcotest.(check bool) name false (typechecks e)
  in
  rejected "unused channel" (Let ("c", Post (Int 1), Int 0));
  rejected "channel waited twice"
    (Let ("c", Post (Int 1), Bin (Add, Wait (Var "c"), Wait (Var "c"))));
  rejected "function used twice"
    (Let
       ( "f",
         Lam ("x", T_int, Var "x"),
         Bin (Add, App (Var "f", Int 1), App (Var "f", Int 2)) ));
  rejected "branches disagree on linear use"
    (Let
       ( "c",
         Post (Int 1),
         If (Bool true, Wait (Var "c"), Int 0) ));
  rejected "self application" Termination.omega_untyped;
  rejected "wait on non-channel" (Wait (Int 3));
  rejected "unbound variable" (Var "nope");
  rejected "unbound type variable" (Lam ("x", T_var "a", Var "x"));
  rejected "arith on bool" (Bin (Add, Bool true, Int 1));
  rejected "runtime channel literal in source" (Wait (Chan_v 0))

(* ---------- semantics ---------- *)

let test_eval () =
  eval_int "simple promise" Termination.simple_promise 3;
  eval_int "chain 10" (Termination.chain 10) 10;
  eval_int "fan 6" (Termination.fan 6) 21;
  eval_int "nested" Termination.nested 42;
  eval_int "impredicative self" Termination.impredicative_self 42;
  eval_int "poly promise" Termination.poly_promise 7

let test_blocking_order () =
  (* a task can wait on a channel resolved later by another task *)
  let e =
    Let
      ( "a",
        Post (Int 5),
        Let
          ( "b",
            Post (Bin (Mul, Wait (Var "a"), Int 2)),
            Bin (Add, Wait (Var "b"), Int 1) ) )
  in
  Alcotest.(check bool) "typechecks" true (typechecks e);
  eval_int "cross-task data flow" e 11

let test_scheduler_counts () =
  match Semantics.exec Termination.simple_promise with
  | Semantics.Value (Int 3, steps) ->
    Alcotest.(check bool) "takes a few scheduler steps" true (steps > 2)
  | _ -> Alcotest.fail "unexpected outcome"

let test_untyped_divergence () =
  match Semantics.exec ~fuel:5_000 Termination.omega_untyped with
  | Semantics.Out_of_fuel -> ()
  | _ -> Alcotest.fail "untyped Ω should spin"

(* ---------- termination with credits ---------- *)

let test_credit_verification () =
  List.iter
    (fun (name, e) ->
      match Termination.verify e with
      | Termination.Terminated _ -> ()
      | Termination.Rejected (r, _) -> Alcotest.failf "%s rejected: %s" name r)
    [
      ("simple", Termination.simple_promise);
      ("chain", Termination.chain 8);
      ("fan", Termination.fan 8);
      ("nested", Termination.nested);
      ("impredicative", Termination.impredicative_self);
      ("poly promise", Termination.poly_promise);
    ]

let test_credit_rejects_divergence () =
  match Termination.verify ~oracle_fuel:20_000 Termination.omega_untyped with
  | Termination.Terminated _ -> Alcotest.fail "Ω accepted!"
  | Termination.Rejected _ -> ()

(* ---------- promise combinators ---------- *)

let test_combinators_typed () =
  let check_ty name e expected =
    match Typing.typecheck e with
    | Ok t ->
      Alcotest.(check bool) name true (ty_equal t expected)
    | Error err -> Alcotest.failf "%s ill-typed: %a" name Typing.pp_error err
  in
  check_ty "pure" (Combinators.pure (Int 1)) (T_chan T_int);
  check_ty "map"
    (Combinators.map
       (Lam ("x", T_int, Bin (Mul, Var "x", Int 2)))
       (Combinators.pure (Int 21)))
    (T_chan T_int);
  check_ty "bind"
    (Combinators.bind (Combinators.pure (Int 1))
       (Lam ("x", T_int, Combinators.pure (Var "x"))))
    (T_chan T_int);
  check_ty "join"
    (Combinators.join (Combinators.pure (Combinators.pure (Int 5))))
    (T_chan T_int);
  check_ty "both"
    (Combinators.both (Combinators.pure (Int 1)) (Combinators.pure (Bool true)))
    (T_chan (T_prod (T_int, T_bool)));
  check_ty "pipeline" (Combinators.pipeline 5) T_int;
  check_ty "tree_sum" (Combinators.tree_sum 3) T_int;
  check_ty "bind_chain" (Combinators.bind_chain 4) T_int

let test_combinators_run () =
  let expect name e v =
    match Semantics.eval e with
    | Some (Int n) -> Alcotest.(check int) name v n
    | Some other -> Alcotest.failf "%s: got %s" name (Syntax.to_string other)
    | None -> Alcotest.failf "%s: no value" name
  in
  expect "map doubles" (Wait (Combinators.map
    (Lam ("x", T_int, Bin (Mul, Var "x", Int 2)))
    (Combinators.pure (Int 21)))) 42;
  expect "pipeline 5 = 1+1+2+3+4+5" (Combinators.pipeline 5) 16;
  expect "tree_sum 3 = 2^3" (Combinators.tree_sum 3) 8;
  expect "bind_chain 6" (Combinators.bind_chain 6) 6

let test_combinators_terminate () =
  List.iter
    (fun (name, e) ->
      Alcotest.(check bool) name true (Termination.terminates e))
    [
      ("pipeline 8", Combinators.pipeline 8);
      ("tree_sum 4", Combinators.tree_sum 4);
      ("bind_chain 8", Combinators.bind_chain 8);
    ]

(* ---------- the theorem, property-tested ---------- *)

let generated_welltyped_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:300 ~name:"generated programs typecheck at int"
       ~print:Gen.print_promise Gen.promise_term
       (fun e ->
         match Typing.typecheck e with
         | Ok T_int -> true
         | Ok _ | Error _ -> false))

let welltyped_terminate_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:300
       ~name:"§5.2 theorem: well-typed programs terminate"
       ~print:Gen.print_promise Gen.promise_term
       (fun e ->
         Typing.well_typed e
         &&
         match Semantics.exec ~fuel:100_000 e with
         | Semantics.Value (Int _, _) -> true
         | Semantics.Value _ | Semantics.Deadlocked _ | Semantics.Stuck _
         | Semantics.Out_of_fuel ->
           false))

let welltyped_credit_prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:150
       ~name:"§5.2 theorem: credit harness certifies generated programs"
       ~print:Gen.print_promise Gen.promise_term
       (fun e -> Termination.terminates e))

let suite =
  [
    Alcotest.test_case "typing: positive" `Quick test_typing_positive;
    Alcotest.test_case "typing: negative" `Quick test_typing_negative;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "cross-task blocking" `Quick test_blocking_order;
    Alcotest.test_case "scheduler accounting" `Quick test_scheduler_counts;
    Alcotest.test_case "untyped Ω diverges" `Quick test_untyped_divergence;
    Alcotest.test_case "credit verification of case studies" `Quick
      test_credit_verification;
    Alcotest.test_case "credit harness rejects Ω" `Quick
      test_credit_rejects_divergence;
    Alcotest.test_case "combinators: typing" `Quick test_combinators_typed;
    Alcotest.test_case "combinators: evaluation" `Quick test_combinators_run;
    Alcotest.test_case "combinators: termination" `Quick
      test_combinators_terminate;
    generated_welltyped_prop;
    welltyped_terminate_prop;
    welltyped_credit_prop;
  ]
