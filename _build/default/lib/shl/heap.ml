(** Heaps: finite maps from locations to values, with fresh allocation.

    Allocation is deterministic (next unused location) so that whole
    executions are reproducible and source/target runs can be compared
    step by step. *)

module M = Map.Make (Int)

type t = Ast.value M.t

let empty : t = M.empty
let lookup l (h : t) = M.find_opt l h
let store l v (h : t) : t = M.add l v h
let mem l (h : t) = M.mem l h
let size (h : t) = M.cardinal h
let bindings (h : t) = M.bindings h

let fresh (h : t) =
  match M.max_binding_opt h with None -> 0 | Some (l, _) -> l + 1

(** [alloc v h] returns the fresh location and the extended heap. *)
let alloc v (h : t) =
  let l = fresh h in
  (l, M.add l v h)

(** [alloc_block vs h] lays out the values [vs] at consecutive
    locations, returning the first one — used to build the
    null-terminated strings of the Levenshtein case study. *)
let alloc_block vs (h : t) =
  let l0 = fresh h in
  let h =
    List.fold_left
      (fun (h, l) v -> (M.add l v h, l + 1))
      (h, l0) vs
    |> fst
  in
  (l0, h)

let equal (a : t) (b : t) =
  M.equal (fun v1 v2 -> Ast.value_eq v1 v2 = Some true) a b

(** [disjoint_union a b]: the union of two heaps with disjoint domains,
    or [None] on overlap — heap composition in the separation-logic
    sense. *)
let disjoint_union (a : t) (b : t) : t option =
  let clash = ref false in
  let merged =
    M.union
      (fun _ _ _ ->
        clash := true;
        None)
      a b
  in
  if !clash then None else Some merged

(** [subheap a b]: every binding of [a] occurs in [b]. *)
let subheap (a : t) (b : t) : bool =
  M.for_all
    (fun l v ->
      match M.find_opt l b with
      | Some v' -> Ast.value_eq v v' = Some true || v = v'
      | None -> false)
    a

(** [diff b a]: remove [a]'s domain from [b]. *)
let diff (b : t) (a : t) : t = M.filter (fun l _ -> not (M.mem l a)) b
