(** The paper's example programs, written in SHL concrete syntax.

    Everything from the paper appears here verbatim-modulo-syntax:
    the mutable lookup table ([map]/[get]/[set]) and [memo_rec] (§4.3),
    the recursive templates of Figure 4 ([Fib], [Slen], [Lev]), the
    [loop] combinator of Lemma 4.1, the stack and reentrant event loop
    of §5.2, and the time-credit examples of §5.1.

    Options are encoded as [None = inl ()], [Some v = inr v]; lists as
    [nil = inl ()], [cons x l = inr (x, l)]; strings as null-terminated
    blocks of integer character codes on the heap (as in the paper's
    Levenshtein case study). *)

open Ast

let p = Parser.parse_exn

(** {1 The mutable lookup table (§4.3)} *)

(** [map () : table] — an empty association-list table. *)
let map_fn = p "fun u -> ref (inl ())"

(** [get tbl k : option] *)
let get_fn =
  p
    {|
fun tbl k ->
  (rec go l.
     match l with
     | inl u -> inl ()
     | inr c -> if fst (fst c) = k then inr (snd (fst c)) else go (snd c)
     end)
  !tbl
|}

(** [set tbl k v : ()] *)
let set_fn = p "fun tbl k v -> tbl := inr ((k, v), !tbl)"

(** {1 memo_rec (§1 and §4.3)}

    [memo_rec t]: memoize the recursive function with template [t]. *)
let memo_rec =
  Let
    ( "map",
      map_fn,
      Let
        ( "get",
          get_fn,
          Let
            ( "set",
              set_fn,
              p
                {|
fun t ->
  let tbl = map () in
  rec g x.
    match get tbl x with
    | inl u -> let y = t g x in set tbl x y; y
    | inr y -> y
    end
|}
            ) ) )

(** [rec_of t = rec g n. t g n] — the standard recursive closure of a
    template (the [r_t] of §4.3). *)
let rec_of (t : expr) : expr = Let ("t", t, p "rec g n. t g n")

(** [memo_of t = memo_rec t] — the memoized closure ([m_t]). *)
let memo_of (t : expr) : expr = App (memo_rec, t)

(** {1 The templates of Figure 4} *)

(** [Fib]: [fib n = if n < 2 then n else fib (n-1) + fib (n-2)]. *)
let fib_template = p "fun g n -> if n < 2 then n else g (n - 1) + g (n - 2)"

(** [Slen]: string length by pointer walk over a null-terminated block. *)
let slen_template = p "fun g s -> if !s = 0 then 0 else g (s +l 1) + 1"

(** [Lev slen]: Levenshtein edit distance between two null-terminated
    strings, parameterized by the string-length function used for the
    base cases — so that [slen] itself can be (nestedly) memoized. *)
let lev_template =
  p
    {|
fun slen ->
  let min = fun a b -> if a < b then a else b in
  fun g q ->
    let s = fst q in
    let t = snd q in
    if !s = 0 then slen t else
    if !t = 0 then slen s else
    if !s = !t then g (s +l 1, t +l 1) else
    1 + min (g (s, t +l 1)) (min (g (s +l 1, t)) (g (s +l 1, t +l 1)))
|}

(** [mlev]: the nested memoization of §4.3 —
    [let mslen = memo_rec Slen in memo_rec (Lev mslen)]. *)
let mlev =
  Let
    ( "mslen",
      memo_of slen_template,
      App (memo_rec, App (lev_template, Var "mslen")) )

(** The plain recursive Levenshtein, with plain recursive [slen]. *)
let rlev =
  Let ("rslen", rec_of slen_template, App (lev_template, Var "rslen") |> rec_of)

(** {1 The loop combinator (Lemma 4.1)} *)

(** [loop f x = if f () then loop f x else ()]. *)
let loop = p "rec loop f x. if f () then loop f x else ()"

(** [e_loop = loop (λ_. true) ()]: the always-diverging target of the
    §4.1 counterexample. *)
let e_loop = App (App (loop, p "fun u -> true"), unit_)

(** [skip]: a single pure step to [()]. *)
let skip = Seq (unit_, unit_)

(** {1 Stack and reentrant event loop (§5.2)} *)

let stack_fn = p "fun u -> ref (inl ())"
let push_fn = p "fun q f -> q := inr (f, !q)"

let pop_fn =
  p
    {|
fun q ->
  match !q with
  | inl u -> inl ()
  | inr c -> q := snd c; inr (fst c)
  end
|}

(** [mkloop () / addtask q f / run q] — the reentrant event loop.  [run]
    pops and executes tasks until the stack is empty; tasks may
    themselves call [addtask]. *)
let event_loop_ctx (body : expr) : expr =
  lets
    [
      ("mkloop", stack_fn);
      ("addtask", push_fn);
      ("pop", pop_fn);
      ( "run",
        p
          {|
rec run q.
  match pop q with
  | inl u -> ()
  | inr f -> f (); run q
  end
|}
      );
    ]
    body

(** {1 Time-credit examples (§5.1)} *)

(** [e_two f = f () + f ()]. *)
let e_two (f : expr) : expr = Let ("f", f, p "f () + f ()")

(** The dynamic-bound example: [let k = u () in let a = ref 0 in
    for i in 0..k-1 do a := !a + f () done; !a].  The number of steps
    depends on the value returned by [u], which is why finite time
    credits cannot verify it compositionally. *)
let dynamic_loop ~(u : expr) ~(f : expr) : expr =
  lets
    [ ("u", u); ("f", f) ]
    (p
       {|
let k = u () in
let a = ref 0 in
(rec go i. if i < k then (a := !a + f (); go (i + 1)) else ()) 0;
!a
|})

(** {1 Strings on the heap} *)

(** [alloc_string s h]: lay out [s] as a null-terminated block of
    character codes; returns the base location. *)
let alloc_string (s : string) (h : Heap.t) : loc * Heap.t =
  let cells = List.init (String.length s) (fun i -> Int (Char.code s.[i])) in
  Heap.alloc_block (cells @ [ Int 0 ]) h

(** {1 OCaml reference implementations (test oracles)} *)

let rec fib_spec n = if n < 2 then n else fib_spec (n - 1) + fib_spec (n - 2)

let lev_spec (a : string) (b : string) : int =
  let la = String.length a and lb = String.length b in
  let memo = Hashtbl.create 64 in
  let rec go i j =
    match Hashtbl.find_opt memo (i, j) with
    | Some r -> r
    | None ->
      let r =
        if i >= la then lb - j
        else if j >= lb then la - i
        else if a.[i] = b.[j] then go (i + 1) (j + 1)
        else 1 + min (go i (j + 1)) (min (go (i + 1) j) (go (i + 1) (j + 1)))
      in
      Hashtbl.add memo (i, j) r;
      r
  in
  go 0 0

(** {1 Ackermann}

    The classical fast-growing function.  Its termination argument is
    lexicographic on [(m, n)] — exactly the shape transfinite credits
    capture (measure below [ω^ω]); no finite budget computable from the
    input size covers it uniformly. *)
let ack =
  p
    {|
rec a m.
  fun n ->
    if m = 0 then n + 1 else
    if n = 0 then a (m - 1) 1 else
    a (m - 1) (a m (n - 1))
|}

let ack_spec =
  let rec go m n =
    if m = 0 then n + 1 else if n = 0 then go (m - 1) 1 else go (m - 1) (go m (n - 1))
  in
  go

(** {1 Queues}

    Two queue implementations used for a refinement case study in the
    spirit of §4: the {e batched} (two-stack, amortized O(1)) queue
    refines the {e naive} (single list, O(n) push) queue.  The batched
    queue's occasional reversal burst is exactly the kind of
    internally-chatty implementation that needs stuttering on the
    target side of a refinement. *)

(** Binds [mkq], [push], [pop] around [body]: the batched queue. *)
let batched_queue_ctx (body : expr) : expr =
  lets
    [
      ("mkq", p "fun u -> (ref (inl ()), ref (inl ()))");
      ("push", p "fun q x -> snd q := inr (x, !(snd q))");
      ( "rev_onto",
        p
          {|
rec rev l.
  fun acc ->
    match l with
    | inl u -> acc
    | inr c -> rev (snd c) (inr (fst c, acc))
    end
|}
      );
      ( "pop",
        p
          {|
fun q ->
  match !(fst q) with
  | inl u ->
    (match rev_onto !(snd q) (inl ()) with
     | inl v -> inl ()
     | inr c -> snd q := inl (); fst q := snd c; inr (fst c)
     end)
  | inr c -> fst q := snd c; inr (fst c)
  end
|}
      );
    ]
    body

(** Binds [mkq], [push], [pop] around [body]: the naive list queue. *)
let naive_queue_ctx (body : expr) : expr =
  lets
    [
      ("mkq", p "fun u -> ref (inl ())");
      ( "snoc",
        p
          {|
rec app l.
  fun x ->
    match l with
    | inl u -> inr (x, inl ())
    | inr c -> inr (fst c, app (snd c) x)
    end
|}
      );
      ("push", p "fun q x -> q := snoc !q x");
      ( "pop",
        p
          {|
fun q ->
  match !q with
  | inl u -> inl ()
  | inr c -> q := snd c; inr (fst c)
  end
|}
      );
    ]
    body

(** {1 List library and sorting}

    Functional lists (nil = [inl ()], cons = [inr (x, l)]) with an
    insertion sort — exercise material for the type system, the safety
    logical relation, and termination credits. *)

let list_of_ints (ns : int list) : expr =
  List.fold_right (fun n acc -> Inj_r_e (Pair_e (int_ n, acc))) ns none_

(** [insertion_sort : list int -> list int]. *)
let insertion_sort =
  p
    {|
let insert =
  rec ins x.
    fun l ->
      match l with
      | inl u -> inr (x, inl ())
      | inr c -> if x <= fst c then inr (x, l) else inr (fst c, ins x (snd c))
      end
in
rec sort l.
  match l with
  | inl u -> inl ()
  | inr c -> insert (fst c) (sort (snd c))
  end
|}

(** Decode an SHL integer list value back to OCaml. *)
let rec decode_int_list (v : value) : int list option =
  match v with
  | Inj_l Unit -> Some []
  | Inj_r (Pair (Int n, rest)) ->
    Option.map (fun tl -> n :: tl) (decode_int_list rest)
  | Unit | Bool _ | Int _ | Loc _ | Pair _ | Inj_l _ | Inj_r _ | Rec_fun _ ->
    None

(** [sum_list : list int -> int]. *)
let sum_list =
  p
    {|
rec sum l.
  match l with
  | inl u -> 0
  | inr c -> fst c + sum (snd c)
  end
|}
