(** Simple types for SHL, with unification-based inference.

    The typed fragment is the ML core: unit/bool/int, products, sums,
    (monomorphic) functions and ML-style references.  Inference is
    classical algorithm-W-without-generalization: SHL terms carry no
    annotations, so lambda parameters get fresh unification variables.
    [let] is {e not} generalized — the fragment is monomorphic
    (documented restriction, like location literals and pointer
    arithmetic, which are untypeable here: [ℓ +ₗ n] deliberately escapes
    the type system, as it does in the paper's Levenshtein example where
    correctness is argued in the logic instead).

    The point of the checker in this repository is the {b fundamental
    theorem} of the safety logical relation, stated executably and
    property-tested: if [infer e = Ok τ] then [e] is semantically safe
    at [τ] — it never gets stuck, at any fuel (see the test suite). *)

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_prod of ty * ty
  | T_sum of ty * ty
  | T_fun of ty * ty
  | T_ref of ty
  | T_var of int  (** unification variable (resolved types contain none) *)

let rec pp_ty ppf = function
  | T_unit -> Format.pp_print_string ppf "unit"
  | T_bool -> Format.pp_print_string ppf "bool"
  | T_int -> Format.pp_print_string ppf "int"
  | T_prod (a, b) -> Format.fprintf ppf "(%a * %a)" pp_ty a pp_ty b
  | T_sum (a, b) -> Format.fprintf ppf "(%a + %a)" pp_ty a pp_ty b
  | T_fun (a, b) -> Format.fprintf ppf "(%a -> %a)" pp_ty a pp_ty b
  | T_ref a -> Format.fprintf ppf "ref %a" pp_ty a
  | T_var n -> Format.fprintf ppf "'a%d" n

let ty_to_string t = Format.asprintf "%a" pp_ty t

type error = string

exception Type_error of error

(* Union-find-free substitution-based unifier: a growable store of
   variable bindings. *)
type state = {
  mutable bindings : (int * ty) list;
  mutable next : int;
}

let fresh st =
  let n = st.next in
  st.next <- n + 1;
  T_var n

let rec resolve st (t : ty) : ty =
  match t with
  | T_var n -> (
    match List.assoc_opt n st.bindings with
    | Some t' -> resolve st t'
    | None -> t)
  | T_unit | T_bool | T_int | T_prod _ | T_sum _ | T_fun _ | T_ref _ -> t

let rec occurs st n (t : ty) : bool =
  match resolve st t with
  | T_var m -> m = n
  | T_prod (a, b) | T_sum (a, b) | T_fun (a, b) ->
    occurs st n a || occurs st n b
  | T_ref a -> occurs st n a
  | T_unit | T_bool | T_int -> false

let rec unify st (t1 : ty) (t2 : ty) : unit =
  let t1 = resolve st t1 and t2 = resolve st t2 in
  match t1, t2 with
  | T_unit, T_unit | T_bool, T_bool | T_int, T_int -> ()
  | T_var n, T_var m when n = m -> ()
  | T_var n, t | t, T_var n ->
    if occurs st n t then
      raise (Type_error "occurs check: recursive type required")
    else st.bindings <- (n, t) :: st.bindings
  | T_prod (a1, b1), T_prod (a2, b2)
  | T_sum (a1, b1), T_sum (a2, b2)
  | T_fun (a1, b1), T_fun (a2, b2) ->
    unify st a1 a2;
    unify st b1 b2
  | T_ref a, T_ref b -> unify st a b
  | (T_unit | T_bool | T_int | T_prod _ | T_sum _ | T_fun _ | T_ref _), _ ->
    raise
      (Type_error
         (Format.asprintf "cannot unify %a with %a" pp_ty t1 pp_ty t2))

(* Fully apply the substitution; leftover variables are defaulted to
   [unit] (they are unconstrained, so any instance is fine — the
   executable analogue of "choose any type"). *)
let rec zonk st (t : ty) : ty =
  match resolve st t with
  | T_var _ -> T_unit
  | T_unit | T_bool | T_int -> resolve st t
  | T_prod (a, b) -> T_prod (zonk st a, zonk st b)
  | T_sum (a, b) -> T_sum (zonk st a, zonk st b)
  | T_fun (a, b) -> T_fun (zonk st a, zonk st b)
  | T_ref a -> T_ref (zonk st a)

let rec infer_expr st (env : (string * ty) list) (e : Ast.expr) : ty =
  match e with
  | Ast.Val v -> infer_value st env v
  | Ast.Var x -> (
    match List.assoc_opt x env with
    | Some t -> t
    | None -> raise (Type_error ("unbound variable " ^ x)))
  | Ast.Rec (f, x, body) ->
    let a = fresh st and b = fresh st in
    let env' = (x, a) :: env in
    let env' = match f with None -> env' | Some f -> (f, T_fun (a, b)) :: env' in
    let tb = infer_expr st env' body in
    unify st b tb;
    T_fun (a, b)
  | Ast.App (e1, e2) ->
    let t1 = infer_expr st env e1 in
    let t2 = infer_expr st env e2 in
    let b = fresh st in
    unify st t1 (T_fun (t2, b));
    b
  | Ast.Un_op (Ast.Neg, e1) ->
    unify st (infer_expr st env e1) T_bool;
    T_bool
  | Ast.Un_op (Ast.Minus, e1) ->
    unify st (infer_expr st env e1) T_int;
    T_int
  | Ast.Bin_op (op, e1, e2) -> (
    let t1 = infer_expr st env e1 in
    let t2 = infer_expr st env e2 in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Quot | Ast.Rem ->
      unify st t1 T_int;
      unify st t2 T_int;
      T_int
    | Ast.Lt | Ast.Le ->
      unify st t1 T_int;
      unify st t2 T_int;
      T_bool
    | Ast.Eq ->
      (* comparable values only: we conservatively require int *)
      unify st t1 T_int;
      unify st t2 T_int;
      T_bool
    | Ast.Ptr_add ->
      raise (Type_error "pointer arithmetic is outside the typed fragment"))
  | Ast.If (c, e1, e2) ->
    unify st (infer_expr st env c) T_bool;
    let t1 = infer_expr st env e1 in
    let t2 = infer_expr st env e2 in
    unify st t1 t2;
    t1
  | Ast.Pair_e (e1, e2) ->
    T_prod (infer_expr st env e1, infer_expr st env e2)
  | Ast.Fst e1 ->
    let a = fresh st and b = fresh st in
    unify st (infer_expr st env e1) (T_prod (a, b));
    a
  | Ast.Snd e1 ->
    let a = fresh st and b = fresh st in
    unify st (infer_expr st env e1) (T_prod (a, b));
    b
  | Ast.Inj_l_e e1 -> T_sum (infer_expr st env e1, fresh st)
  | Ast.Inj_r_e e1 -> T_sum (fresh st, infer_expr st env e1)
  | Ast.Case (e0, (x, e1), (y, e2)) ->
    let a = fresh st and b = fresh st in
    unify st (infer_expr st env e0) (T_sum (a, b));
    let t1 = infer_expr st ((x, a) :: env) e1 in
    let t2 = infer_expr st ((y, b) :: env) e2 in
    unify st t1 t2;
    t1
  | Ast.Ref e1 -> T_ref (infer_expr st env e1)
  | Ast.Load e1 ->
    let a = fresh st in
    unify st (infer_expr st env e1) (T_ref a);
    a
  | Ast.Store (e1, e2) ->
    let a = fresh st in
    unify st (infer_expr st env e1) (T_ref a);
    unify st (infer_expr st env e2) a;
    T_unit
  | Ast.Let (x, e1, e2) ->
    let t1 = infer_expr st env e1 in
    infer_expr st ((x, t1) :: env) e2
  | Ast.Seq (e1, e2) ->
    (* the first component may have any type; its value is dropped *)
    let _ = infer_expr st env e1 in
    infer_expr st env e2
  | Ast.Cas (e1, e2, e3) ->
    (* atomic compare-and-set on integer cells *)
    unify st (infer_expr st env e1) (T_ref T_int);
    unify st (infer_expr st env e2) T_int;
    unify st (infer_expr st env e3) T_int;
    T_bool
  | Ast.Fork _ ->
    raise (Type_error "fork is outside the (sequential) typed fragment")

and infer_value st env (v : Ast.value) : ty =
  match v with
  | Ast.Unit -> T_unit
  | Ast.Bool _ -> T_bool
  | Ast.Int _ -> T_int
  | Ast.Loc _ ->
    raise (Type_error "location literals are outside the typed fragment")
  | Ast.Pair (v1, v2) -> T_prod (infer_value st env v1, infer_value st env v2)
  | Ast.Inj_l v1 -> T_sum (infer_value st env v1, fresh st)
  | Ast.Inj_r v1 -> T_sum (fresh st, infer_value st env v1)
  | Ast.Rec_fun (f, x, body) -> infer_expr st env (Ast.Rec (f, x, body))

(** [infer e]: the (zonked) principal type of the closed expression
    [e], with unconstrained variables defaulted to [unit]. *)
let infer (e : Ast.expr) : (ty, error) result =
  let st = { bindings = []; next = 0 } in
  match infer_expr st [] e with
  | t -> Ok (zonk st t)
  | exception Type_error msg -> Error msg

let well_typed e = Result.is_ok (infer e)
