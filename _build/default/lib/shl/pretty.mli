(** Pretty-printing SHL terms in the concrete syntax accepted by
    {!Parser} (round-trip property-tested, including the
    non-associativity of comparisons). *)

val pp_value : Format.formatter -> Ast.value -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val expr_to_string : Ast.expr -> string
val value_to_string : Ast.value -> string
