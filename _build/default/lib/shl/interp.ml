(** Executing SHL programs: a fueled driver over {!Step.prim_step} with
    step accounting and optional tracing.  This is the "run the target"
    half of every experiment harness. *)

open Ast

type outcome =
  | Value of value * Heap.t
  | Stuck of Step.config * expr  (** configuration and its stuck redex *)
  | Out_of_fuel of Step.config

type stats = {
  steps : int;  (** total primitive steps *)
  pure_steps : int;
  heap_steps : int;
}

let no_stats = { steps = 0; pure_steps = 0; heap_steps = 0 }

let bump stats kind =
  {
    steps = stats.steps + 1;
    pure_steps = (stats.pure_steps + if Step.kind_is_pure kind then 1 else 0);
    heap_steps = (stats.heap_steps + if Step.kind_is_pure kind then 0 else 1);
  }

(** [exec ?fuel ?heap e]: run [e] to completion (or until the fuel runs
    out), returning the outcome and step statistics. *)
let exec ?(fuel = 1_000_000) ?(heap = Heap.empty) (e : expr) :
    outcome * stats =
  let rec go (cfg : Step.config) stats n =
    if n = 0 then (Out_of_fuel cfg, stats)
    else
      match Step.prim_step cfg with
      | Error Step.Finished -> (
        match cfg.expr with
        | Val v -> (Value (v, cfg.heap), stats)
        | _ -> assert false)
      | Error (Step.Stuck redex) -> (Stuck (cfg, redex), stats)
      | Ok (cfg', kind) -> go cfg' (bump stats kind) (n - 1)
  in
  go { expr = e; heap } no_stats fuel

(** [eval e]: the result value, or [None] on stuck/diverging (within
    fuel) executions. *)
let eval ?fuel ?heap e =
  match exec ?fuel ?heap e with
  | Value (v, _), _ -> Some v
  | (Stuck _ | Out_of_fuel _), _ -> None

(** [steps_to_value e]: number of steps to reach a value, if reached. *)
let steps_to_value ?fuel ?heap e =
  match exec ?fuel ?heap e with
  | Value _, stats -> Some stats.steps
  | (Stuck _ | Out_of_fuel _), _ -> None

(** The finite prefix of the execution trace of [e]: the successive
    configurations, including the initial one. *)
let trace ?(fuel = 1000) ?(heap = Heap.empty) (e : expr) : Step.config list =
  let rec go cfg acc n =
    if n = 0 then List.rev (cfg :: acc)
    else
      match Step.prim_step cfg with
      | Error (Step.Finished | Step.Stuck _) -> List.rev (cfg :: acc)
      | Ok (cfg', _) -> go cfg' (cfg :: acc) (n - 1)
  in
  go { Step.expr = e; heap } [] fuel

(** [diverges_beyond n e]: [e] runs for at least [n] steps without
    finishing — the bounded, executable face of "e diverges".  (True
    divergence is Π⁰₁; every harness that "checks divergence" checks
    this for a caller-chosen [n], and says so.) *)
let diverges_beyond n e =
  match exec ~fuel:n e with
  | Out_of_fuel _, _ -> true
  | (Value _ | Stuck _), _ -> false
