(** Recursive-descent parser for the SHL concrete syntax.

    The grammar (see the implementation header for the full BNF) is an
    OCaml-like surface syntax: [let x = e in e], [rec f x. e],
    [fun x -> e], [if]/[then]/[else], [match e with inl x -> e | inr y
    -> e end], [ref e], [!e], [e := e], pairs, [fst]/[snd], [inl]/[inr],
    arithmetic and comparisons, [&&]/[||] (sugar for [if]), and nested
    [(* … *)] comments.  {!Pretty.pp_expr} prints into this syntax;
    round-tripping is property-tested. *)

val parse : string -> (Ast.expr, string) result
(** [parse src] parses a complete expression; the error message carries
    a byte offset. *)

val parse_exn : string -> Ast.expr
(** Like {!parse}, raising [Failure] — convenient in examples, tests and
    program tables. *)
