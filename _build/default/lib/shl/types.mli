(** Simple types for SHL, with unification-based inference.

    The typed fragment is the monomorphic ML core: unit/bool/int,
    products, sums, functions and ML-style references.  [let] is not
    generalized; location literals and pointer arithmetic are
    untypeable (deliberately: they escape the type system the way the
    paper's Levenshtein example does, with correctness argued in the
    logic instead).  The checker exists to state the {e fundamental
    theorem} of the safety logical relation executably: if
    [infer e = Ok τ] then [e] is semantically safe at [τ]
    (property-tested; see {!Logrel.fundamental}). *)

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_prod of ty * ty
  | T_sum of ty * ty
  | T_fun of ty * ty
  | T_ref of ty
  | T_var of int  (** unification variable; absent from inferred types *)

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

type error = string

val infer : Ast.expr -> (ty, error) result
(** The principal type of a closed expression, with unconstrained
    variables defaulted to [unit] (sound for closed terms by
    parametricity). *)

val well_typed : Ast.expr -> bool
