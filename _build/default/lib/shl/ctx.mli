(** Evaluation contexts for SHL (the [K] of Figure 2).

    A context is a list of frames, innermost first.  These are the
    contexts the refinement logic's [src(K[e])] resource and Bind rule
    quantify over (§4.1). *)

type frame =
  | App_l of Ast.expr  (** [☐ e] *)
  | App_r of Ast.value  (** [v ☐] *)
  | Un_op_f of Ast.un_op
  | Bin_op_l of Ast.bin_op * Ast.expr
  | Bin_op_r of Ast.bin_op * Ast.value
  | If_f of Ast.expr * Ast.expr
  | Pair_l of Ast.expr
  | Pair_r of Ast.value
  | Fst_f
  | Snd_f
  | Inj_l_f
  | Inj_r_f
  | Case_f of (string * Ast.expr) * (string * Ast.expr)
  | Ref_f
  | Load_f
  | Store_l of Ast.expr
  | Store_r of Ast.value
  | Let_f of string * Ast.expr
  | Seq_f of Ast.expr
  | Cas_1 of Ast.expr * Ast.expr  (** [cas ☐ e2 e3] *)
  | Cas_2 of Ast.value * Ast.expr  (** [cas v1 ☐ e3] *)
  | Cas_3 of Ast.value * Ast.value  (** [cas v1 v2 ☐] *)

type t = frame list

val empty : t
val fill_frame : frame -> Ast.expr -> Ast.expr

val fill : t -> Ast.expr -> Ast.expr
(** Plug an expression into the hole (innermost frame first). *)

val decompose : Ast.expr -> (t * Ast.expr) option
(** The unique decomposition [e = K[e']] with [e'] a head redex;
    [None] when [e] is a value.  [fill] is its left inverse
    (property-tested). *)

val depth : t -> int
