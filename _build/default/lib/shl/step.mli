(** Small-step operational semantics of SHL.

    SHL is deterministic, so the step relation [{tgt] is a partial
    function on configurations.  Head steps are classified as {e pure}
    (the [e { e'] of the paper's PureT/PureS rules) or heap steps
    (alloc/load/store) — the distinction the program logics' rules key
    on (Figure 3). *)

type config = {
  expr : Ast.expr;
  heap : Heap.t;
}

val config : ?heap:Heap.t -> Ast.expr -> config

type kind =
  | Pure  (** a [{] step: β, if, case, projections, arithmetic, … *)
  | Alloc of Ast.loc
  | Load_of of Ast.loc
  | Store_to of Ast.loc

val kind_is_pure : kind -> bool

type error =
  | Stuck of Ast.expr  (** the head redex cannot step *)
  | Finished  (** the expression is already a value *)

val pp_error : Format.formatter -> error -> unit

val eval_un_op : Ast.un_op -> Ast.value -> Ast.value option
val eval_bin_op : Ast.bin_op -> Ast.value -> Ast.value -> Ast.value option

val head_step : Heap.t -> Ast.expr -> (Ast.expr * Heap.t * kind) option
(** One step of a head redex. *)

val prim_step : config -> (config * kind, error) result
(** One whole-configuration step: decompose, head-step, refill. *)

val pure_step : Ast.expr -> Ast.expr option
(** The paper's [e { e']: a whole-program step whose head step is pure. *)

val pure_steps : ?fuel:int -> Ast.expr -> Ast.expr -> bool
(** [pure_steps e e']: [e {* e'] using only pure steps, within fuel —
    the executable side condition of the PureT/PureS rule checkers. *)

val is_reducible_in : Heap.t -> Ast.expr -> bool
