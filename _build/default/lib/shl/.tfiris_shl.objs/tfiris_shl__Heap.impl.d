lib/shl/heap.ml: Ast Int List Map
