lib/shl/pretty.mli: Ast Format
