lib/shl/types.ml: Ast Format List Result
