lib/shl/interp.ml: Ast Heap List Step
