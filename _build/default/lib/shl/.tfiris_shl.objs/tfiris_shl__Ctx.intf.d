lib/shl/ctx.mli: Ast
