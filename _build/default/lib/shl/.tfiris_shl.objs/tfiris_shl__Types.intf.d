lib/shl/types.mli: Ast Format
