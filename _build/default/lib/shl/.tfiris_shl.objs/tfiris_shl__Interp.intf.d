lib/shl/interp.mli: Ast Heap Step
