lib/shl/lexer.mli: Format
