lib/shl/heap.mli: Ast
