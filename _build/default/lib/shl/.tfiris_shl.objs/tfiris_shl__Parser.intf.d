lib/shl/parser.mli: Ast
