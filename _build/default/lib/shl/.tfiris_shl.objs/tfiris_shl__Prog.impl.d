lib/shl/prog.ml: Ast Char Hashtbl Heap List Option Parser String
