lib/shl/conc.ml: Ast Ctx Hashtbl Heap List Option Parser Queue Step
