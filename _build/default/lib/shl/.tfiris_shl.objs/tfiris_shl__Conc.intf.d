lib/shl/conc.mli: Ast Heap
