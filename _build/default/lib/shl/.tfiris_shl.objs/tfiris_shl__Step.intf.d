lib/shl/step.mli: Ast Format Heap
