lib/shl/lexer.ml: Format List String
