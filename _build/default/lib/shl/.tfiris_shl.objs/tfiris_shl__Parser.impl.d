lib/shl/parser.ml: Ast Format Lexer List Printf
