lib/shl/ast.ml: List Set String
