lib/shl/pretty.ml: Ast Format
