lib/shl/ctx.ml: Ast List
