lib/shl/step.ml: Ast Ctx Format Heap Option
