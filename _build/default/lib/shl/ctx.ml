(** Evaluation contexts for SHL (the [K] of Figure 2).

    A context is a list of frames, innermost first.  [decompose] finds
    the unique head redex of a non-value expression; [fill] plugs an
    expression back in.  These are the contexts the refinement logic's
    [src(K[e])] resource and Bind rule quantify over (§4.1). *)

open Ast

type frame =
  | App_l of expr  (** [☐ e] *)
  | App_r of value  (** [v ☐] *)
  | Un_op_f of un_op
  | Bin_op_l of bin_op * expr
  | Bin_op_r of bin_op * value
  | If_f of expr * expr
  | Pair_l of expr
  | Pair_r of value
  | Fst_f
  | Snd_f
  | Inj_l_f
  | Inj_r_f
  | Case_f of (string * expr) * (string * expr)
  | Ref_f
  | Load_f
  | Store_l of expr
  | Store_r of value
  | Let_f of string * expr
  | Seq_f of expr
  | Cas_1 of expr * expr  (** [cas ☐ e2 e3] *)
  | Cas_2 of value * expr  (** [cas v1 ☐ e3] *)
  | Cas_3 of value * value  (** [cas v1 v2 ☐] *)

type t = frame list

let empty : t = []

let fill_frame (f : frame) (e : expr) : expr =
  match f with
  | App_l e2 -> App (e, e2)
  | App_r v -> App (Val v, e)
  | Un_op_f op -> Un_op (op, e)
  | Bin_op_l (op, e2) -> Bin_op (op, e, e2)
  | Bin_op_r (op, v) -> Bin_op (op, Val v, e)
  | If_f (e2, e3) -> If (e, e2, e3)
  | Pair_l e2 -> Pair_e (e, e2)
  | Pair_r v -> Pair_e (Val v, e)
  | Fst_f -> Fst e
  | Snd_f -> Snd e
  | Inj_l_f -> Inj_l_e e
  | Inj_r_f -> Inj_r_e e
  | Case_f (b1, b2) -> Case (e, b1, b2)
  | Ref_f -> Ref e
  | Load_f -> Load e
  | Store_l e2 -> Store (e, e2)
  | Store_r v -> Store (Val v, e)
  | Let_f (x, e2) -> Let (x, e, e2)
  | Seq_f e2 -> Seq (e, e2)
  | Cas_1 (e2, e3) -> Cas (e, e2, e3)
  | Cas_2 (v1, e3) -> Cas (Val v1, e, e3)
  | Cas_3 (v1, v2) -> Cas (Val v1, Val v2, e)

(** [fill k e]: plug [e] into the hole of [k] (innermost frame first). *)
let fill (k : t) (e : expr) : expr = List.fold_left (fun e f -> fill_frame f e) e k

(** [decompose e]: the unique decomposition [e = K[e']] where [e'] is a
    head redex (an expression that can step — or is stuck — at the top
    level).  Returns [None] when [e] is a value. *)
let decompose (e : expr) : (t * expr) option =
  (* Frames are pushed as we descend, so the head of [acc] is always the
     innermost frame — already the representation of [t]. *)
  let rec go acc e =
    let into f e = go (f :: acc) e in
    let redex () = Some (acc, e) in
    match e with
    | Val _ -> None
    | Var _ | Rec _ -> redex ()
    | App (Val _, Val _) -> redex ()
    | App (Val v1, e2) -> into (App_r v1) e2
    | App (e1, e2) -> into (App_l e2) e1
    | Un_op (_, Val _) -> redex ()
    | Un_op (op, e1) -> into (Un_op_f op) e1
    | Bin_op (_, Val _, Val _) -> redex ()
    | Bin_op (op, Val v1, e2) -> into (Bin_op_r (op, v1)) e2
    | Bin_op (op, e1, e2) -> into (Bin_op_l (op, e2)) e1
    | If (Val _, _, _) -> redex ()
    | If (e1, e2, e3) -> into (If_f (e2, e3)) e1
    | Pair_e (Val _, Val _) -> redex ()
    | Pair_e (Val v1, e2) -> into (Pair_r v1) e2
    | Pair_e (e1, e2) -> into (Pair_l e2) e1
    | Fst (Val _) -> redex ()
    | Fst e1 -> into Fst_f e1
    | Snd (Val _) -> redex ()
    | Snd e1 -> into Snd_f e1
    | Inj_l_e (Val _) -> redex ()
    | Inj_l_e e1 -> into Inj_l_f e1
    | Inj_r_e (Val _) -> redex ()
    | Inj_r_e e1 -> into Inj_r_f e1
    | Case (Val _, _, _) -> redex ()
    | Case (e1, b1, b2) -> into (Case_f (b1, b2)) e1
    | Ref (Val _) -> redex ()
    | Ref e1 -> into Ref_f e1
    | Load (Val _) -> redex ()
    | Load e1 -> into Load_f e1
    | Store (Val _, Val _) -> redex ()
    | Store (Val v1, e2) -> into (Store_r v1) e2
    | Store (e1, e2) -> into (Store_l e2) e1
    | Let (_, Val _, _) -> redex ()
    | Let (x, e1, e2) -> into (Let_f (x, e2)) e1
    | Seq (e1, _) when is_value e1 -> redex ()
    | Seq (e1, e2) -> into (Seq_f e2) e1
    | Fork _ -> redex ()
    | Cas (Val _, Val _, Val _) -> redex ()
    | Cas (Val v1, Val v2, e3) -> into (Cas_3 (v1, v2)) e3
    | Cas (Val v1, e2, e3) -> into (Cas_2 (v1, e3)) e2
    | Cas (e1, e2, e3) -> into (Cas_1 (e2, e3)) e1
  in
  go [] e

let depth (k : t) = List.length k
