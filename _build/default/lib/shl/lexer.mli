(** Lexer for the SHL concrete syntax.  Used by {!Parser}; exposed for
    testing and for tools that want token-level access. *)

type token =
  | Int of int
  | Ident of string
  | Kw of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Bang
  | Hash
  | Assign  (** [:=] *)
  | Arrow  (** [->] *)
  | Dot
  | Bar
  | Op of string
  | Eof

type located = {
  tok : token;
  pos : int;  (** byte offset in the input *)
}

exception Error of string * int

val keywords : string list

val tokenize : string -> located list
(** Tokenize a whole input (ends with {!Eof}); raises {!Error} on
    unexpected characters or unterminated comments. *)

val pp_token : Format.formatter -> token -> unit
