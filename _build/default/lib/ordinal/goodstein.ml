(** Goodstein sequences: the classical showcase of termination by
    ordinal descent.

    Write [n] in {e hereditary base-b} notation (exponents recursively
    in base b too), bump every occurrence of [b] to [b+1], subtract one;
    repeat with [b+1].  The numbers explode, yet the sequence always
    reaches 0 — because the ordinal obtained by replacing the base with
    [ω] strictly decreases at every step, and ordinal descent is
    well-founded.  (Independence from Peano arithmetic is what made this
    famous; here it serves as an end-to-end exercise of the ordinal
    substrate: the map to ordinals is exactly the paper's idea of
    proving termination by simulation into a well-founded source,
    §2.6.) *)

module O = Ord

(** Hereditary base-[b] representation: a sum of terms [b^e · c] with
    [e] itself represented hereditarily. *)
type hereditary = Terms of (hereditary * int) list
(* invariant: exponents strictly decreasing, coefficients in [1, b-1] *)

let rec to_hereditary ~base (n : int) : hereditary =
  if base < 2 then invalid_arg "Goodstein.to_hereditary: base < 2"
  else if n < 0 then invalid_arg "Goodstein.to_hereditary: negative"
  else if n = 0 then Terms []
  else begin
    (* find the largest power of [base] not exceeding [n] *)
    let rec largest p e = if p > n / base then (p, e) else largest (p * base) (e + 1) in
    let p, e = largest 1 0 in
    let c = n / p in
    let (Terms rest) = to_hereditary ~base (n - (c * p)) in
    Terms ((to_hereditary ~base e, c) :: rest)
  end

(* Overflow-checked arithmetic: Goodstein values outgrow native integers
   within a few dozen steps even for small seeds; we compute exactly as
   far as [int] reaches and stop there ({!sequence} truncates). *)
let add_c a b = if a > max_int - b then None else Some (a + b)

let mul_c a b =
  if a = 0 || b = 0 then Some 0
  else if a > max_int / b then None
  else Some (a * b)

let rec ipow_c b k =
  if k = 0 then Some 1
  else match ipow_c b (k - 1) with None -> None | Some p -> mul_c b p

let ( let* ) = Option.bind

let rec of_hereditary_opt ~base (Terms h : hereditary) : int option =
  List.fold_left
    (fun acc (e, c) ->
      let* acc = acc in
      let* v = of_hereditary_opt ~base e in
      let* p = ipow_c base v in
      let* t = mul_c c p in
      add_c acc t)
    (Some 0) h

let of_hereditary ~base h =
  match of_hereditary_opt ~base h with
  | Some n -> n
  | None -> invalid_arg "Goodstein.of_hereditary: overflow"

(** The ordinal shadow: replace the base by [ω]. *)
let rec ordinal_of_hereditary (Terms h : hereditary) : O.t =
  List.fold_left
    (fun acc (e, c) ->
      O.add acc (O.mul (O.omega_pow (ordinal_of_hereditary e)) (O.of_int c)))
    O.zero h

let ordinal_of ~base n = ordinal_of_hereditary (to_hereditary ~base n)

type step_result =
  | Zero  (** the sequence has reached 0 *)
  | Next of int
  | Overflow  (** the next value exceeds native integers *)

(** One Goodstein step: rewrite hereditarily in [base], read back in
    [base + 1], subtract one. *)
let step ~base (n : int) : step_result =
  if n = 0 then Zero
  else
    let h = to_hereditary ~base n in
    match of_hereditary_opt ~base:(base + 1) h with
    | Some v -> Next (v - 1)
    | None -> Overflow

(** The Goodstein sequence of [n] starting at base 2, with its bases;
    truncated at [max_len] or at integer overflow (the full sequences
    are astronomically long for n ≥ 4 even though they provably
    terminate). *)
let sequence ?(max_len = 64) (n : int) : (int * int) list =
  let rec go base n acc k =
    if k = 0 then List.rev acc
    else
      match step ~base n with
      | Zero -> List.rev ((base, n) :: acc)
      | Overflow -> List.rev ((base, n) :: acc)
      | Next n' -> go (base + 1) n' ((base, n) :: acc) (k - 1)
  in
  go 2 n [] max_len

(** The ordinal shadows along the (truncated) sequence — the strictly
    decreasing certificate. *)
let ordinal_trace ?max_len (n : int) : O.t list =
  List.map (fun (base, k) -> ordinal_of ~base k) (sequence ?max_len n)
