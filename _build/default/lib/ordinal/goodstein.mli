(** Goodstein sequences: hereditary base-bump arithmetic whose
    termination certificate is a strictly descending ordinal — the
    classical exercise of the ordinal substrate (§2.6's idea of
    termination by simulation into a well-founded source).

    Arithmetic is overflow-checked: sequences are truncated where the
    values outgrow native integers (they do so quickly — the sequences
    are astronomically long even though they provably reach 0). *)

type hereditary = Terms of (hereditary * int) list
(** Hereditary base-[b] representation: [Σ b^eᵢ·cᵢ] with the exponents
    themselves represented hereditarily; exponents strictly decreasing,
    coefficients in [1, b-1]. *)

val to_hereditary : base:int -> int -> hereditary
val of_hereditary : base:int -> hereditary -> int
(** Raises [Invalid_argument] on native-integer overflow. *)

val of_hereditary_opt : base:int -> hereditary -> int option

val ordinal_of_hereditary : hereditary -> Ord.t
(** The ordinal shadow: replace the base by [ω]. *)

val ordinal_of : base:int -> int -> Ord.t

type step_result =
  | Zero  (** the sequence has reached 0 *)
  | Next of int
  | Overflow  (** the next value exceeds native integers *)

val step : base:int -> int -> step_result
(** Rewrite hereditarily in [base], read back in [base+1], subtract 1. *)

val sequence : ?max_len:int -> int -> (int * int) list
(** The Goodstein sequence from base 2 as [(base, value)] pairs,
    truncated at [max_len] or at overflow. *)

val ordinal_trace : ?max_len:int -> int -> Ord.t list
(** The strictly descending ordinal certificate along the sequence. *)
