lib/ordinal/goodstein.mli: Ord
