lib/ordinal/goodstein.ml: List Option Ord
