lib/ordinal/ord.ml: Format List Stdlib
