lib/ordinal/ord.mli: Format
