(** Ordinal numbers below [ε₀] in Cantor normal form.

    An ordinal is represented as a sum [ω^e₁·c₁ + ⋯ + ω^eₖ·cₖ] with
    exponents [eᵢ] (themselves ordinals) strictly decreasing and
    coefficients [cᵢ ≥ 1].  This covers every ordinal below [ε₀], which is
    far more than Transfinite Iris's case studies require (the paper's
    examples use step-indices up to [ω·2], [ω²] and [ω^ω]).

    The module provides both the {e standard} (non-commutative) ordinal
    arithmetic and the {e Hessenberg} (natural, commutative) arithmetic.
    The latter is what the paper's [TSplit] rule for time credits is built
    on: [$(α ⊕ β) ⇔ $α ∗ $β] requires a commutative addition so that
    credits form a commutative monoid (§5.1). *)

type t
(** An ordinal [< ε₀]. Values of this type always satisfy the CNF
    invariant; they are constructed only through the functions below. *)

(** {1 Constants and injections} *)

val zero : t
val one : t
val two : t

val omega : t
(** [ω], the first infinite ordinal. *)

val of_int : int -> t
(** [of_int n] is the finite ordinal [n]. Raises [Invalid_argument] if
    [n < 0]. *)

val omega_pow : t -> t
(** [omega_pow e] is [ω^e]. In particular [omega_pow zero = one] and
    [omega_pow one = omega]. *)

val omega_tower : int -> t
(** [omega_tower n] is the tower [ω^ω^⋯^ω] of height [n];
    [omega_tower 0 = one]. These are the canonical cofinal sequence
    below [ε₀]. *)

(** {1 Ordering} *)

val compare : t -> t -> int
(** Total order; this is the (well-founded) ordinal order. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t

val is_zero : t -> bool

(** {1 Structure} *)

val is_finite : t -> bool
val to_int_opt : t -> int option
(** [to_int_opt a] is [Some n] iff [a] is the finite ordinal [n]. *)

val is_succ : t -> bool
val is_limit : t -> bool
(** A limit ordinal is neither [0] nor a successor. *)

val succ : t -> t

val pred : t -> t option
(** [pred a] is [Some b] with [succ b = a] if [a] is a successor, and
    [None] if [a] is [0] or a limit. *)

val degree : t -> t
(** [degree a] is the leading exponent of [a] (i.e. the largest [e] with
    [ω^e ≤ a]).  [degree zero = zero] by convention. *)

val nat_part : t -> int
(** The coefficient of [ω^0] in the CNF of [a]: the largest [n] with
    [γ + n = a] for a limit-or-zero [γ]. *)

val limit_part : t -> t
(** [a] with its finite part removed, so
    [add (limit_part a) (of_int (nat_part a)) = a]. *)

val terms : t -> (t * int) list
(** The CNF term list [(exponent, coefficient)], exponents strictly
    decreasing, coefficients positive. Exposed for pretty-printers and
    tests; cannot be used to build invalid ordinals. *)

(** {1 Standard arithmetic}

    Standard ordinal arithmetic: associative but {e not} commutative
    ([1 + ω = ω ≠ ω + 1]). *)

val add : t -> t -> t
val mul : t -> t -> t

val sub : t -> t -> t
(** Left subtraction: [sub a b] is the unique [c] with [add b c = a]
    when [b ≤ a], and [zero] when [a ≤ b]. *)

(** {1 Hessenberg (natural) arithmetic}

    Commutative, associative, strictly monotone in both arguments, and
    cancellative — the properties required for ordinals to form a
    separation-logic resource (partial commutative monoid) in §5.1. *)

val hsum : t -> t -> t
(** Natural sum [α ⊕ β]: add CNFs coefficient-wise. *)

val hprod : t -> t -> t
(** Natural product [α ⊗ β]: distribute over CNF terms using [⊕] on
    exponents. *)

val hsum_list : t list -> t

(** {1 Exponentiation} *)

val pow : t -> t -> t
(** [pow a b] is standard ordinal exponentiation [a^b] (so
    [pow (of_int 2) omega = omega] and [pow omega omega = omega_pow
    omega]).  Total on ordinals below ε₀. *)

(** {1 Limits} *)

val fundamental : t -> int -> t
(** [fundamental a n] is the [n]-th element [a[n]] of the canonical
    fundamental sequence of the limit ordinal [a]:
    a strictly increasing sequence with supremum [a].
    Raises [Invalid_argument] if [a] is not a limit ordinal. *)

val sup_list : t list -> t
(** Supremum (= maximum) of a finite, possibly empty list. *)

(** {1 Descent} *)

val descend : t -> t
(** [descend a] for [a > 0] is some canonical ordinal strictly below [a]:
    [pred a] for successors and [fundamental a 1] for limits. Used as a
    default "spend one credit" move. Raises [Invalid_argument] on [0]. *)

val descent_depth : ?fuel:int -> t -> int
(** Length of the descending chain [a > descend a > ⋯ > 0], capped at
    [fuel] (default [10_000]).  Every descending chain is finite
    (well-foundedness); this is the executable face of that fact. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [ω^2·3 + ω + 5], [ω^(ω+1)], [ω^ω^ω]. *)

val to_string : t -> string

val hash : t -> int
