(** Syntax of the step-indexed core logic.

    A deep embedding of the propositional fragment of (Transfinite)
    Iris's core logic: intuitionistic connectives, the later modality,
    and quantifiers.  The same formula can be interpreted in the finite
    model (standard Iris, {!Semantics.eval_fin}) and in the transfinite
    model ({!Semantics.eval_trans}) — the whole point of the paper is
    that the two interpretations disagree on what is provable.

    Quantification over ℕ-indexed families is first-class because the
    paper's central counterexample [∃n:ℕ. ▷ⁿ False] needs it.  A family
    carries a declared supremum of its members' truth heights (an
    ordinal); see {!Height.sup_family} for how the declaration is
    validated. *)

module Ord = Tfiris_ordinal.Ord

type t =
  | True
  | False
  | Index_lt of Ord.t
      (** The primitive proposition that holds at exactly the step-indices
          [β < α] — an "atom" with a prescribed truth height, used to
          build formulas with arbitrary semantics in tests.  In the
          finite model it denotes the same cut restricted to ℕ (so any
          transfinite [α] collapses to [⊤]). *)
  | And of t * t
  | Or of t * t
  | Impl of t * t
  | Later of t
  | Exists_fin of t list
  | Forall_fin of t list
  | Exists_nat of family
  | Forall_nat of family * int
      (** Universal quantification over an ℕ-family, annotated with an
          index attaining the minimal truth height.  Infima of ordinals
          are always attained, so unlike the supremum of {!Exists_nat}
          no declared limit is needed — just its (checkable) witness.
          The annotation is validated by sampling during evaluation. *)

and family = {
  name : string;  (** Identity of the family, used for formula equality. *)
  sup : Ord.t;  (** Declared supremum of the members' truth heights. *)
  member : int -> t;
}

let rec later_n n p = if n <= 0 then p else later_n (n - 1) (Later p)
let neg p = Impl (p, False)
let iff p q = And (Impl (p, q), Impl (q, p))

let family ~name ~sup member = { name; sup; member }

(** [∃n:ℕ. ▷ⁿ False] — the paper's §2.7 counterexample, with its true
    supremum [ω] ([h (▷ⁿ False) = n + 1]). *)
let later_bot_family =
  family ~name:"later_bot" ~sup:Ord.omega (fun n -> later_n n False)

let later_family fam =
  {
    name = "later_" ^ fam.name;
    (* h (▷ Φ n) = h (Φ n) + 1, whose sup over n is the declared sup
       when that sup is a limit, and its successor otherwise. *)
    sup = (if Ord.is_limit fam.sup then fam.sup else Ord.succ fam.sup);
    member = (fun n -> Later (fam.member n));
  }

let family_equal f g = String.equal f.name g.name && Ord.equal f.sup g.sup

let rec equal p q =
  match p, q with
  | True, True | False, False -> true
  | Index_lt a, Index_lt b -> Ord.equal a b
  | And (a, b), And (c, d) | Or (a, b), Or (c, d) | Impl (a, b), Impl (c, d) ->
    equal a c && equal b d
  | Later a, Later b -> equal a b
  | Exists_fin xs, Exists_fin ys | Forall_fin xs, Forall_fin ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Exists_nat f, Exists_nat g -> family_equal f g
  | Forall_nat (f, w1), Forall_nat (g, w2) -> family_equal f g && w1 = w2
  | ( (True | False | Index_lt _ | And _ | Or _ | Impl _ | Later _
      | Exists_fin _ | Forall_fin _ | Exists_nat _ | Forall_nat _),
      _ ) ->
    false

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "True"
  | False -> Format.pp_print_string ppf "False"
  | Index_lt a -> Format.fprintf ppf "(idx < %a)" Ord.pp a
  | And (p, q) -> Format.fprintf ppf "(%a \xe2\x88\xa7 %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a \xe2\x88\xa8 %a)" pp p pp q
  | Impl (p, q) -> Format.fprintf ppf "(%a \xe2\x87\x92 %a)" pp p pp q
  | Later p -> Format.fprintf ppf "\xe2\x96\xb7%a" pp p
  | Exists_fin ps ->
    Format.fprintf ppf "\xe2\x88\x83fin[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp)
      ps
  | Forall_fin ps ->
    Format.fprintf ppf "\xe2\x88\x80fin[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp)
      ps
  | Exists_nat f ->
    Format.fprintf ppf "\xe2\x88\x83n:\xe2\x84\x95. %s(n)" f.name
  | Forall_nat (f, _) ->
    Format.fprintf ppf "\xe2\x88\x80n:\xe2\x84\x95. %s(n)" f.name

let to_string p = Format.asprintf "%a" pp p
