(** The existential dilemma, end to end (§2.7 and Theorem 7.1).

    Theorem 7.1: no consistent logic has all of (a) a sound later
    modality, (b) Löb induction, (c) the [LaterExists] commuting rule,
    and (d) the existential property.  The proof constructs a derivation
    of [⊢ ∃n:ℕ. ▷ⁿ False] from (b) + (c), then uses (d) to extract an
    [n] with [⊨ ▷ⁿ False] and (a) to conclude [⊨ False].

    This module builds that derivation as a concrete {!Proof.t} and runs
    the whole argument in both systems:

    - {b finite system}: the derivation checks (and its conclusion is
      semantically valid — standard Iris really proves this formula!),
      but the witness extraction of (d) fails: the existential property
      is what the finite model gives up;
    - {b transfinite system}: the checker rejects the [LaterExists] step,
      and the formula is semantically invalid (truth height [ω]); in
      exchange, (d) holds (Theorem 6.2).

    Either way the contradiction is defused — the "dilemma" is that a
    step-indexed logic must choose which of (c), (d) to keep. *)

module F = Formula

let fam = F.later_bot_family

(** [∃n:ℕ. ▷ⁿ False]. *)
let formula : F.t = Exists_nat fam

(** The Löb + LaterExists derivation of [⊢ ∃n. ▷ⁿ False]:

    {v
      ⊢ ∃n. ▷ⁿ⊥
        by Löb, from  True ∧ ▷(∃n. ▷ⁿ⊥) ⊢ ∃n. ▷ⁿ⊥
        by ∧-elim-r and LaterExists, from  ∃n. ▷ⁿ⁺¹⊥ ⊢ ∃n. ▷ⁿ⊥
        by ∃-elim, from  ▷ⁿ⁺¹⊥ ⊢ ∃n. ▷ⁿ⊥  for each n
        by ∃-intro at n+1.
    v} *)
let derivation : Proof.t =
  let shifted = F.later_family fam in
  let elim =
    Proof.Exists_nat_elim
      {
        fam = shifted;
        rhs = formula;
        premise =
          (fun n ->
            Exists_nat_intro
              {
                fam;
                index = n + 1;
                premise = Refl (fam.member (n + 1));
              });
        samples = 16;
      }
  in
  let body =
    Proof.Cut
      ( And_elim_r (True, Later formula),
        Cut (Later_exists fam, elim) )
  in
  Loeb body

type outcome = {
  system : Proof.system;
  derivation_accepted : bool;
  checker_message : string option;
  formula_valid : bool;  (** semantic validity of [∃n. ▷ⁿ False] *)
  existential_verdict : Existential.verdict;
  consistent : bool;
      (** whether the meta-level contradiction is avoided: it would
          require the derivation accepted {e and} a witness extracted. *)
}

let run system : outcome =
  let accepted, msg =
    match Proof.check_validity system derivation with
    | Ok _ -> (true, None)
    | Error e -> (false, Some (Format.asprintf "%a" Proof.pp_error e))
  in
  let formula_valid, verdict =
    match system with
    | Proof.Finite -> (Semantics.valid_fin formula, Existential.check_fin fam)
    | Proof.Transfinite ->
      (Semantics.valid_trans formula, Existential.check_trans fam)
  in
  let exploded =
    accepted && (match verdict with Existential.Witness _ -> true | _ -> false)
  in
  {
    system;
    derivation_accepted = accepted;
    checker_message = msg;
    formula_valid;
    existential_verdict = verdict;
    consistent = not exploded;
  }

let pp_outcome ppf o =
  let name =
    match o.system with Proof.Finite -> "finite" | Proof.Transfinite -> "transfinite"
  in
  Format.fprintf ppf
    "@[<v>system: %s@,derivation of \xe2\x8a\xa2 \xe2\x88\x83n. \
     \xe2\x96\xb7\xe2\x81\xbf\xe2\x8a\xa5 accepted: %b%a@,formula \
     semantically valid: %b@,existential property: %a@,consistent: %b@]"
    name o.derivation_accepted
    (fun ppf -> function
      | None -> ()
      | Some m -> Format.fprintf ppf "@,checker: %s" m)
    o.checker_message o.formula_valid Existential.pp_verdict
    o.existential_verdict o.consistent
