lib/logic/formula_parser.ml: Formula List Printf String Tfiris_ordinal
