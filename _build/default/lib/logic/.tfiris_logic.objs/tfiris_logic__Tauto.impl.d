lib/logic/tauto.ml: Formula List Option Proof
