lib/logic/formula_parser.mli: Formula
