lib/logic/existential.ml: Format Formula Semantics Tfiris_sprop
