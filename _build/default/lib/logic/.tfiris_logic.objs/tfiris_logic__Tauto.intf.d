lib/logic/tauto.mli: Formula Proof
