lib/logic/dilemma.ml: Existential Format Formula Proof Semantics
