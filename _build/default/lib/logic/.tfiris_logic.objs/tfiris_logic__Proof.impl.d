lib/logic/proof.ml: Format Formula List Result Semantics
