lib/logic/formula.ml: Format List String Tfiris_ordinal
