lib/logic/derived.ml: Formula Proof Tfiris_ordinal
