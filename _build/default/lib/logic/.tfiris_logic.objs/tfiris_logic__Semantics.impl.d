lib/logic/semantics.ml: Formula List Printf Tfiris_ordinal Tfiris_sprop
