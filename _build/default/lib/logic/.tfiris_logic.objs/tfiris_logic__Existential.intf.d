lib/logic/existential.mli: Format Formula
