lib/logic/dilemma.mli: Existential Format Formula Proof
