lib/logic/semantics.mli: Formula Tfiris_sprop
