(** A concrete syntax for formulas (used by the CLI's [prove]
    subcommand and tests).

    Connectives: [->] (right-associative), [/\ ] or [&], [\/ ] or [|],
    [~p] (sugar for [p -> false]), [true], [false], parentheses.  Atoms:
    identifiers (mapped to distinct [Index_lt] heights) or explicit
    [idx<ORD] with [ORD] one of [w], [w^w], [w*k], [w+k], or a number. *)

val parse : string -> (Formula.t, string) result
val parse_exn : string -> Formula.t
