(** A library of derived rules: standard lemmas of step-indexed logic
    assembled from the primitives of {!Proof} and validated by the
    checker in {b both} systems.

    This is the §7 story from the constructive side: everything here is
    provable {e without} the [LaterExists] commuting rule, so all of it
    survives the move to Transfinite Iris.  The single derivation that
    genuinely needs [LaterExists] is {!Dilemma.derivation} — and that is
    exactly the one the transfinite checker rejects. *)

module F = Formula
open Proof

(** [P ∧ Q ⊢ Q ∧ P]. *)
let and_comm p q : t = And_intro (And_elim_r (p, q), And_elim_l (p, q))

(** [(P ∧ Q) ∧ R ⊢ P ∧ (Q ∧ R)]. *)
let and_assoc p q r : t =
  let pq = F.And (p, q) in
  And_intro
    ( Cut (And_elim_l (pq, r), And_elim_l (p, q)),
      And_intro
        (Cut (And_elim_l (pq, r), And_elim_r (p, q)), And_elim_r (pq, r)) )

(** [P ⊢ P ∧ P]. *)
let and_dup p : t = And_intro (Refl p, Refl p)

(** [P ∨ Q ⊢ Q ∨ P]. *)
let or_comm p q : t = Or_elim (Or_intro_r (q, p), Or_intro_l (q, p))

(** [⊢ P ⇒ P]. *)
let impl_refl p : t = Impl_intro (And_elim_r (F.True, p))

(** Internal modus ponens: [(P ⇒ Q) ∧ P ⊢ Q]. *)
let modus_ponens p q : t =
  Impl_elim (And_elim_l (F.Impl (p, q), p), And_elim_r (F.Impl (p, q), p))

(** [▷(P ∧ Q) ⊢ ▷P ∧ ▷Q] — the unproblematic direction, by monotonicity. *)
let later_and_elim p q : t =
  And_intro (Later_mono (And_elim_l (p, q)), Later_mono (And_elim_r (p, q)))

(** [▷P ∧ ▷Q ⊢ ▷(P ∧ Q)] — the commuting direction; primitive, and
    (unlike [LaterExists]) sound in both systems. *)
let later_and_intro p q : t = Later_conj (p, q)

(** [▷(P ⇒ Q) ∧ ▷P ⊢ ▷Q]: later distributes over implication. *)
let later_impl p q : t =
  Cut (Later_conj (F.Impl (p, q), p), Later_mono (modus_ponens p q))

(** [⊢ ▷ⁿ True], by chaining later-introductions. *)
let later_n_true n : t =
  let rec build k fml d =
    if k = 0 then d else build (k - 1) (F.Later fml) (Cut (d, Later_intro fml))
  in
  build n F.True (Refl F.True)

(** Löb with the hypothesis packaged as an implication:
    from [⊢ ▷P ⇒ P] conclude [⊢ P]. *)
let loeb_impl (premise : t) (p : F.t) : t =
  (* premise : True ⊢ ▷P ⇒ P.  By Löb it suffices to derive
     True ∧ ▷P ⊢ P, which follows by applying the implication to the
     later hypothesis. *)
  let ctx = F.And (F.True, F.Later p) in
  Loeb
    (Impl_elim
       ( Cut (True_intro ctx, premise),
         And_elim_r (F.True, F.Later p) ))

(** [∃fin ∨-style case split]: [∃fin [P; Q] ⊣ P ∨ Q] both directions. *)
let exists_fin_to_or p q : t =
  Exists_fin_elim
    { rhs = F.Or (p, q); premises = [ Or_intro_l (p, q); Or_intro_r (p, q) ] }

let or_to_exists_fin p q : t =
  Or_elim
    ( Exists_fin_intro { members = [ p; q ]; index = 0; premise = Refl p },
      Exists_fin_intro { members = [ p; q ]; index = 1; premise = Refl q } )

(** The whole library, with the sequents they should conclude — consumed
    by the test suite, which checks each derivation in both systems and
    validates semantic soundness. *)
let catalogue : (string * t) list =
  let a = F.Index_lt (F.later_bot_family.F.sup) in
  (* a = (idx < ω): a formula with different validity in the two models *)
  let b = F.Index_lt Tfiris_ordinal.Ord.two in
  [
    ("and_comm", and_comm a b);
    ("and_assoc", and_assoc a b F.True);
    ("and_dup", and_dup a);
    ("or_comm", or_comm a b);
    ("impl_refl", impl_refl a);
    ("modus_ponens", modus_ponens a b);
    ("later_and_elim", later_and_elim a b);
    ("later_and_intro", later_and_intro a b);
    ("later_impl", later_impl a b);
    ("later_n_true", later_n_true 5);
    ( "loeb_impl",
      (* ⊢ ▷True ⇒ True, then Löb gives ⊢ True *)
      loeb_impl (Impl_intro (True_intro (F.And (F.True, F.Later F.True)))) F.True );
    ("exists_fin_to_or", exists_fin_to_or a b);
    ("or_to_exists_fin", or_to_exists_fin a b);
  ]
