(** A contraction-free intuitionistic prover (Dyckhoff's G4ip) emitting
    {!Proof.t} derivations, re-checkable in either system — the prover
    cannot be wrong, only incomplete.

    Scope: the propositional, later-free fragment.  Note the truth-height
    models are {e linear} Heyting algebras and validate Gödel–Dummett's
    [(P⇒Q) ∨ (Q⇒P)], which is not intuitionistically provable: the
    prover is sound for the models but deliberately not complete for
    them (tested). *)

val prove : Formula.t -> Proof.t option
(** A checked derivation of [⊢ goal] (conclusion [True ⊢ goal]), or
    [None]. *)

val provable : Formula.t -> bool

val entails : Formula.t -> Formula.t -> Proof.t option
(** Search for a derivation of [p ⊢ q]. *)
