(** The existential dilemma, end to end (§2.7 and Theorem 7.1): the
    Löb + LaterExists derivation of [⊢ ∃n. ▷ⁿ False] as a concrete
    proof tree, run through both systems.

    In the finite system the derivation checks, the formula is
    semantically valid, and witness extraction fails — consistency is
    saved by the absence of the existential property.  In the
    transfinite system the checker rejects the [LaterExists] step and
    the formula is invalid — consistency is saved by the absence of the
    commuting rule.  Theorem 7.1 is the statement that no system can
    keep both; [consistent] records that neither of ours explodes. *)

val fam : Formula.family
(** [▷ⁿ False], with its true supremum [ω]. *)

val formula : Formula.t
(** [∃n:ℕ. ▷ⁿ False]. *)

val derivation : Proof.t
(** The Löb + LaterExists proof of [⊢ ∃n. ▷ⁿ False]. *)

type outcome = {
  system : Proof.system;
  derivation_accepted : bool;
  checker_message : string option;
  formula_valid : bool;
  existential_verdict : Existential.verdict;
  consistent : bool;
}

val run : Proof.system -> outcome
val pp_outcome : Format.formatter -> outcome -> unit
