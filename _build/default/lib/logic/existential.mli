(** The existential property (Theorem 6.2), executably.

    Over the truth-height model the property is computable: a valid
    transfinite [∃n. Φ n] must have a valid member (the declared family
    suprema are ordinals below ε₀, so the only route to [⊤] is a [⊤]
    member), and a bounded search finds it.  In the finite model the
    property fails — [∃n. ▷ⁿ False] is valid with no valid member. *)

type verdict =
  | Premise_invalid  (** [⊭ ∃n. Φ n]: the property holds vacuously *)
  | Witness of int  (** [⊨ Φ n] for this [n] *)
  | No_witness
      (** valid [∃] with no valid member — the property {e fails}
          (finite model only) *)

val pp_verdict : Format.formatter -> verdict -> unit

val check_trans : ?bound:int -> Formula.family -> verdict
val check_fin : ?bound:int -> Formula.family -> verdict

val holds_trans : ?bound:int -> Formula.family -> bool
(** The existential property holds of this family transfinitely —
    a Theorem 6.2 instance. *)

val holds_fin : ?bound:int -> Formula.family -> bool
