(** The memoization case studies of §1 and §4.3.

    For a template [t], the paper proves [memo_rec t n ⪯G r_t n]: the
    memoized function is a termination-preserving refinement of the
    plain recursive one.  Here each instance is packaged as a
    target/source pair plus a checked certificate for the {!Driver}
    (produced by {!Strategy.oracle}), and the negative variants the
    paper uses to motivate the whole enterprise are provided alongside:

    - [broken_template]: replacing [t g x] with [g x] in [memo_rec]'s
      body (the §1 mutation) yields a memoized function that diverges on
      every input yet would still pass a mere {e result}-refinement
      check; no driver strategy can certify it.
    - unbounded stuttering: the table lookup in [memo_rec] takes more
      steps each time the table grows, so no {e fixed finite} stutter
      bound works across all arguments — the reason Tassarotti et
      al.'s bounded-stutter refinement cannot handle [memo_rec] and
      transfinite budgets can (§8). *)

module Ord = Tfiris_ordinal.Ord
open Tfiris_shl

type instance = {
  label : string;
  target : Step.config;
  source : Step.config;
}

(** [fib_instance n]: [memo_rec Fib n ⪯ℕ r_Fib n]. *)
let fib_instance n =
  {
    label = Printf.sprintf "memo_fib(%d)" n;
    target = Step.config (Ast.App (Prog.memo_of Prog.fib_template, Ast.int_ n));
    source = Step.config (Ast.App (Prog.rec_of Prog.fib_template, Ast.int_ n));
  }

(** [lev_instance a b]: nested memoized Levenshtein vs the plain
    recursive one, on heap-allocated null-terminated strings. *)
let lev_instance a b =
  let heap = Heap.empty in
  let l1, heap = Prog.alloc_string a heap in
  let l2, heap = Prog.alloc_string b heap in
  let arg = Ast.Val (Ast.Pair (Ast.Loc l1, Ast.Loc l2)) in
  {
    label = Printf.sprintf "memo_lev(%S,%S)" a b;
    target = { Step.expr = Ast.App (Prog.mlev, arg); heap };
    source = { Step.expr = Ast.App (Prog.rlev, arg); heap };
  }

(** [slen_instance s]: memoized string length vs plain. *)
let slen_instance s =
  let heap = Heap.empty in
  let l, heap = Prog.alloc_string s heap in
  let arg = Ast.Val (Ast.Loc l) in
  {
    label = Printf.sprintf "memo_slen(%S)" s;
    target = { Step.expr = Ast.App (Prog.memo_of Prog.slen_template, arg); heap };
    source = { Step.expr = Ast.App (Prog.rec_of Prog.slen_template, arg); heap };
  }

(** The §1 mutation: a template whose body calls [g x] instead of
    [t g x], so the memoized version loops forever on a cache miss. *)
let broken_identity_template = Parser.parse_exn "fun g n -> g n"

let broken_instance n =
  {
    label = Printf.sprintf "broken_memo(%d)" n;
    target =
      Step.config (Ast.App (Prog.memo_of broken_identity_template, Ast.int_ n));
    source =
      (* the source: plain fib — terminating, so termination preservation
         must fail. (Any terminating source would do.) *)
      Step.config (Ast.App (Prog.rec_of Prog.fib_template, Ast.int_ n));
  }

(** [certify ?fuel inst]: produce and check an oracle certificate.
    Returns the driver verdict ([None] if no certificate exists, e.g.
    a diverging side). *)
let certify ?(fuel = 10_000_000) (inst : instance) : Driver.verdict option =
  match Strategy.oracle ~fuel ~target:inst.target ~source:inst.source () with
  | None -> None
  | Some strat ->
    Some (Driver.run ~fuel ~target:inst.target ~source:inst.source strat)

(** {1 The unbounded-stutter measurement (§8, vs Tassarotti et al.)}

    [lookup_cost_growth ns]: for each [n], the number of consecutive
    target-only steps [memo_rec Fib] spends on its table lookup when
    called on [n] after the table has been filled by computing [fib n]
    once.  The sequence grows without bound in [n]; any refinement
    framework with a fixed finite stutter budget fails beyond the
    corresponding argument, while an ordinal budget [ω] covers all. *)
let lookup_cost (n : int) : int option =
  (* Compute [fib n] once to fill the table with entries 0..n, then look
     up the oldest entry (argument 1, now deepest in the association
     list).  The lookup's step count is a stutter run a refinement proof
     must justify with no source progress (the source performs a single
     unfolding); it grows without bound in [n]. *)
  let open Ast in
  let prog =
    Let
      ( "mf",
        Prog.memo_of Prog.fib_template,
        Seq (App (Var "mf", int_ n), App (Var "mf", int_ 1)) )
  in
  let first =
    Let ("mf", Prog.memo_of Prog.fib_template, App (Var "mf", int_ n))
  in
  match
    ( Interp.steps_to_value ~fuel:50_000_000 prog,
      Interp.steps_to_value ~fuel:50_000_000 first )
  with
  | Some both, Some once -> Some (both - once)
  | None, _ | _, None -> None
