(** Strategy combinators — ways of producing refinement certificates
    for {!Driver}.  Nothing here is trusted: the driver checks every
    move. *)

module Ord = Tfiris_ordinal.Ord
open Tfiris_shl

val lockstep : Driver.strategy
(** One source step per target step (the simulations of §2.2 and
    Lemma 4.2); never stutters. *)

val paced : src_per_burst:int -> tgt_per_burst:int -> Driver.strategy
(** [k] source steps every [m] target steps, stuttering on exact finite
    budgets in between. *)

val stutter_only : Ord.t -> Driver.strategy
(** Never advance the source; spend the ordinal down by canonical
    descent.  What a bogus refinement like [e_loop ⪯ skip] must resort
    to — and the driver stops it in finitely many steps. *)

val oracle :
  ?fuel:int ->
  target:Step.config ->
  source:Step.config ->
  unit ->
  Driver.strategy option
(** Pre-run both sides; if both terminate, schedule the source's steps
    evenly along the target's with exact finite budgets — the generic
    certificate generator for terminating pairs (the analogue of
    discharging the proof once in Coq, then replaying it).  [None] when
    either side fails to terminate within [fuel]. *)

val scripted : Driver.decision list -> Driver.strategy
(** An explicit move list (tests); falls back to canonical-descent
    stuttering when the list runs out. *)
