(** Queue refinement: the batched (two-stack) queue refines the naive
    list queue.

    A §4-style case study beyond the paper's own: the target's
    occasional O(n) reversal burst means no lock-step simulation exists
    — the proof needs target-side stuttering whose length depends on the
    (dynamic) queue contents, the same unbounded-stutter shape as
    [memo_rec]'s table lookup.  Clients are operation scripts; the two
    implementations must produce the same observation list, and the
    refinement is certified by the budgeted driver. *)

module Ord = Tfiris_ordinal.Ord
open Tfiris_shl

type op =
  | Push of int
  | Pop

let pp_op ppf = function
  | Push n -> Format.fprintf ppf "push %d" n
  | Pop -> Format.pp_print_string ppf "pop"

let pp_script ppf ops =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp_op ppf ops

(** Compile a script to a client body: run the operations against the
    ambient [mkq]/[push]/[pop] bindings, collecting every pop result in
    an output list (most recent first).  The result value is ground. *)
let client (ops : op list) : Ast.expr =
  let open Ast in
  let rec build = function
    | [] -> Load (Var "out")
    | Push n :: rest ->
      Seq (app2 (Var "push") (Var "q") (int_ n), build rest)
    | Pop :: rest ->
      Seq
        ( Store
            ( Var "out",
              Inj_r_e (Pair_e (App (Var "pop", Var "q"), Load (Var "out"))) ),
          build rest )
  in
  Let
    ( "q",
      App (Var "mkq", unit_),
      Let ("out", Ref (Ast.none_), build ops) )

let instance (ops : op list) : Memo_spec.instance =
  let label =
    if List.length ops <= 6 then Format.asprintf "queue[%a]" pp_script ops
    else Printf.sprintf "queue(%d ops)" (List.length ops)
  in
  {
    Memo_spec.label;
    target = Step.config (Prog.batched_queue_ctx (client ops));
    source = Step.config (Prog.naive_queue_ctx (client ops));
  }

(** The expected observation list, from a reference OCaml queue:
    most recent pop first, [None] for pops of an empty queue. *)
let oracle (ops : op list) : int option list =
  let q = Queue.create () in
  List.fold_left
    (fun acc op ->
      match op with
      | Push n ->
        Queue.add n q;
        acc
      | Pop -> (try Some (Queue.pop q) with Queue.Empty -> None) :: acc)
    [] ops

(** Decode the client's output value back into the oracle's shape. *)
let rec decode (v : Ast.value) : int option list option =
  match v with
  | Ast.Inj_l Ast.Unit -> Some []
  | Ast.Inj_r (Ast.Pair (obs, rest)) -> (
    match decode rest with
    | None -> None
    | Some tail -> (
      match obs with
      | Ast.Inj_l Ast.Unit -> Some (None :: tail)
      | Ast.Inj_r (Ast.Int n) -> Some (Some n :: tail)
      | _ -> None))
  | _ -> None

(** Run one implementation of the script directly. *)
let run_impl ~(batched : bool) (ops : op list) : int option list option =
  let prog =
    if batched then Prog.batched_queue_ctx (client ops)
    else Prog.naive_queue_ctx (client ops)
  in
  match Interp.eval ~fuel:50_000_000 prog with
  | Some v -> decode v
  | None -> None

(** Certify the refinement of a script with the oracle strategy. *)
let certify ?(fuel = 50_000_000) (ops : op list) : Driver.verdict option =
  let inst = instance ops in
  match
    Strategy.oracle ~fuel ~target:inst.Memo_spec.target
      ~source:inst.Memo_spec.source ()
  with
  | None -> None
  | Some strat ->
    Some
      (Driver.run ~fuel ~target:inst.Memo_spec.target
         ~source:inst.Memo_spec.source strat)
