lib/refinement/adequacy.ml: Ast Driver Interp List Step Tfiris_shl
