lib/refinement/conc_refine.ml: Ast Conc Format List Pretty Step Tfiris_ordinal Tfiris_shl
