lib/refinement/strategy.ml: Array Driver Format Printf Step Tfiris_ordinal Tfiris_shl
