lib/refinement/rules.ml: Ast Driver Format Heap List Option Pretty Step Tfiris_ordinal Tfiris_shl
