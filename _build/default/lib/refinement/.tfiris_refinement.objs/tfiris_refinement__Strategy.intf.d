lib/refinement/strategy.mli: Driver Step Tfiris_ordinal Tfiris_shl
