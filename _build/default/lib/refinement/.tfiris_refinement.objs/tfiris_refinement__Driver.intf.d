lib/refinement/driver.mli: Ast Format Step Tfiris_ordinal Tfiris_shl
