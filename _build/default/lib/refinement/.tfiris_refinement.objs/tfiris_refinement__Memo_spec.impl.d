lib/refinement/memo_spec.ml: Ast Driver Heap Interp Parser Printf Prog Step Strategy Tfiris_ordinal Tfiris_shl
