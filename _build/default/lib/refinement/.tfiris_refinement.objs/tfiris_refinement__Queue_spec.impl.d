lib/refinement/queue_spec.ml: Ast Driver Format Interp List Memo_spec Printf Prog Queue Step Strategy Tfiris_ordinal Tfiris_shl
