lib/refinement/driver.ml: Ast Format Pretty Step Tfiris_ordinal Tfiris_shl
