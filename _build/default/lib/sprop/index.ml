(** Step-index domains.

    A step-indexed logic is parameterized by a well-ordered collection of
    step-indices.  Iris uses the natural numbers; Transfinite Iris uses
    ordinals.  Everything in {!Cut} is generic over this choice, so the
    finite and transfinite models are literally the same construction
    instantiated twice — which is how the paper presents them (§2.4
    vs. §6.1). *)

module type S = sig
  type t

  val zero : t
  val succ : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val has_limits : bool
  (** Whether this index domain contains limit points. This is the
      semantic switch the whole paper turns on: suprema of unbounded
      ℕ-families exist inside the domain iff [has_limits]. *)
end

(** Finite step-indices: the model of standard Iris (§2.4). *)
module Nat : S with type t = int = struct
  type t = int

  let zero = 0
  let succ n = n + 1
  let compare = Stdlib.compare
  let equal = Int.equal
  let pp = Format.pp_print_int
  let has_limits = false
end

(** Transfinite step-indices: ordinals below ε₀ (§6.1). *)
module Ordinal : S with type t = Tfiris_ordinal.Ord.t = struct
  include Tfiris_ordinal.Ord

  let has_limits = true
end
