(** Uniform predicates: the model of [iProp].

    §6.2 of the paper models Transfinite Iris propositions as monotone,
    step-indexed predicates over resources: [iProp ≈ F(iProp) →mon SProp].
    Our executable counterpart fixes a (discrete) resource algebra [R] and
    represents a proposition as a function [R.t → Height.t].  The smart
    constructors below all produce predicates that are monotone in
    resource extension; [of_fun] is the unchecked escape hatch and
    {!monotone_on} the corresponding test-time checker.

    Separating conjunction is computed by enumerating the (finitely many)
    decompositions of the resource — note that it is an {e existential}
    over splits, which is why the paper loses the commuting rule
    [▷(P ∗ Q) ⊢ ▷P ∗ ▷Q] along with [LaterExists] (§7). *)

module Ord = Tfiris_ordinal.Ord

module Make (R : Resource.S) = struct
  type t = R.t -> Height.t

  let holds (p : t) r alpha = Height.holds_at (p r) alpha
  let of_fun f : t = f

  (* r0 ≼ r iff some decomposition of r has r0 on the left. *)
  let included r0 r =
    List.exists (fun (a, _) -> R.equal a r0) (R.splits r)

  let pure h : t = fun _ -> h
  let tt = pure Height.tt
  let ff = pure Height.ff
  let embed b = pure (if b then Height.tt else Height.ff)

  (** [own r0]: ownership of at least the resource [r0]. *)
  let own r0 : t = fun r -> if included r0 r then Height.tt else Height.ff

  let conj p q : t = fun r -> Height.conj (p r) (q r)
  let disj p q : t = fun r -> Height.disj (p r) (q r)
  let later p : t = fun r -> Height.later (p r)
  let later_n n p : t = fun r -> Height.later_n n (p r)

  (** The persistence modality: [□P] holds of [r] when [P] holds of the
      duplicable part of [r].  Validates [□P ⊢ P] (via [core r ≼ r] and
      monotonicity), [□P ⊢ □□P] (core idempotence) and [□P ⊢ □P ∗ □P]
      (cores are duplicable) — all property-tested. *)
  let box p : t = fun r -> p (R.core r)

  (** (P ∗ Q) r = sup over r = r1 ⋅ r2 of min (P r1) (Q r2). *)
  let sep p q : t =
   fun r ->
    Height.exists_fin
      (List.map (fun (r1, r2) -> Height.conj (p r1) (q r2)) (R.splits r))

  let sep_list ps = List.fold_left sep (own R.unit) ps

  (** Magic wand restricted to a finite candidate frame set:
      (P -∗ Q) r = inf over composable r' of (P r' ⇒ Q (r ⋅ r')). *)
  let wand_over candidates p q : t =
   fun r ->
    Height.forall_fin
      (List.filter_map
         (fun r' ->
           match R.compose r r' with
           | None -> None
           | Some rr -> Some (Height.impl (p r') (q rr)))
         candidates)

  let exists_fin ps : t = fun r -> Height.exists_fin (List.map (fun p -> p r) ps)
  let forall_fin ps : t = fun r -> Height.forall_fin (List.map (fun p -> p r) ps)

  (** Validity and entailment, checked over a finite set of resources
      (the executable stand-in for quantification over all resources). *)
  let valid_on rs p = List.for_all (fun r -> Height.valid (p r)) rs

  let entails_on rs p q =
    List.for_all (fun r -> Height.le (p r) (q r)) rs

  (** Monotonicity in resource extension, checked over candidate frames:
      for every [r] and composable [r'], [P r ⊨ P (r ⋅ r')]. *)
  let monotone_on rs p =
    List.for_all
      (fun r ->
        List.for_all
          (fun r' ->
            match R.compose r r' with
            | None -> true
            | Some rr -> Height.le (p r) (p rr))
          rs)
      rs

  (** Pointwise Banach fixed point over a finite resource carrier: the
      executable face of the recursive-domain-equation construction of
      §6.2, restricted to contractive operators on predicates. *)
  let fixpoint_on ?(fuel = 1024) rs (f : t -> t) : t option =
    let table = Hashtbl.create 16 in
    let solve r =
      match Hashtbl.find_opt table r with
      | Some h -> Some h
      | None ->
        (* Solve the height equation at resource r by iterating the whole
           operator but observing it at r only. *)
        let rec iter p n =
          if n = 0 then None
          else
            let p' = f p in
            if List.for_all (fun r0 -> Height.equal (p r0) (p' r0)) rs then
              Some (p r)
            else iter p' (n - 1)
        in
        let res =
          match iter (fun _ -> Height.tt) fuel with
          | Some h -> Some h
          | None -> iter (fun _ -> Height.ff) fuel
        in
        (match res with Some h -> Hashtbl.add table r h | None -> ());
        res
    in
    let solved = List.map (fun r -> (r, solve r)) rs in
    if List.for_all (fun (_, h) -> h <> None) solved then
      Some
        (fun r ->
          match List.find_opt (fun (r0, _) -> R.equal r0 r) solved with
          | Some (_, Some h) -> h
          | Some (_, None) | None -> Height.ff)
    else None
end
