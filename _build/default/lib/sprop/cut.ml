(** Step-indexed propositions as truth heights ("cuts").

    A step-indexed proposition over an index domain [I] is a {e down-closed}
    family [P : I.t → Prop] (Definition 6.1 in the paper: if [P α] and
    [β ≤ α] then [P β]).  Over a linearly ordered index domain, a
    down-closed set is determined by the least index at which it fails —
    its {e truth height}.  So

    {v  SProp  ≅  I.t ⊎ {⊤}  v}

    and every connective of step-indexed logic becomes a total, computable
    function on heights.  This makes the paper's semantic model {e exact}
    in OCaml: validity, entailment, the later modality, Löb induction and
    the existential property are all decidable on this representation.

    [H a] denotes the proposition that holds at exactly the indices
    [β < a]; [Top] holds everywhere. *)

(** The interface of a cut model; see the function comments in {!Make}
    for the semantics of each operation. *)
module type S = sig
  type index

  type t =
    | H of index  (** holds at exactly the indices [β < a] *)
    | Top  (** holds everywhere *)

  val ff : t
  val tt : t
  val of_index : index -> t
  val holds_at : t -> index -> bool
  val valid : t -> bool
  val equal : t -> t -> bool
  val le : t -> t -> bool
  val entails : t -> t -> bool
  val compare : t -> t -> int
  val conj : t -> t -> t
  val disj : t -> t -> t
  val impl : t -> t -> t
  val iff : t -> t -> t
  val neg : t -> t
  val later : t -> t
  val later_n : int -> t -> t
  val conj_list : t list -> t
  val disj_list : t list -> t
  val exists_fin : t list -> t
  val forall_fin : t list -> t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val dist : index -> t -> t -> bool
  val agree_below : index -> t -> t -> bool
  val contractive_at : index -> (t -> t) -> t -> t -> bool
  val fixpoint : ?fuel:int -> (t -> t) -> t option
  val iterates : (t -> t) -> int -> t list
end

module Make (I : Index.S) : S with type index = I.t = struct
  type index = I.t

  type t =
    | H of I.t
    | Top

  let ff = H I.zero
  let tt = Top
  let of_index a = H a

  let holds_at p beta =
    match p with Top -> true | H a -> I.compare beta a < 0

  let valid p = match p with Top -> true | H _ -> false

  let equal p q =
    match p, q with
    | Top, Top -> true
    | H a, H b -> I.equal a b
    | Top, H _ | H _, Top -> false

  (** The height order: [le p q] iff [p] entails [q] (holds at fewer
      indices).  This is semantic entailment [p ⊨ q]. *)
  let le p q =
    match p, q with
    | _, Top -> true
    | Top, H _ -> false
    | H a, H b -> I.compare a b <= 0

  let entails = le

  let compare p q =
    match p, q with
    | Top, Top -> 0
    | Top, H _ -> 1
    | H _, Top -> -1
    | H a, H b -> I.compare a b

  (* Lattice structure: ∧ is pointwise "and", which on cuts is min;
     ∨ is max. *)
  let conj p q = if le p q then p else q
  let disj p q = if le p q then q else p

  (* (P ⇒ Q) α  ≜  ∀β ≤ α. P β ⇒ Q β.  On cuts: ⊤ if h P ≤ h Q,
     otherwise exactly h Q (the implication first fails at the least β
     where P holds but Q does not, which is h Q). *)
  let impl p q = if le p q then Top else q

  let iff p q = conj (impl p q) (impl q p)
  let neg p = impl p ff

  (* (▷ P) α ≜ ∀β < α. P β: holds at α iff α ≤ h P, so h (▷P) = h P + 1.
     On ⊤ the quantification is vacuous at every index. *)
  let later p = match p with Top -> Top | H a -> H (I.succ a)

  let rec later_n n p = if n <= 0 then p else later_n (n - 1) (later p)

  let conj_list = List.fold_left conj tt
  let disj_list = List.fold_left disj ff

  (* Finite quantifiers: ∃ over a finite family is the sup of heights,
     ∀ the inf. *)
  let exists_fin ps = disj_list ps
  let forall_fin ps = conj_list ps

  let pp ppf = function
    | Top -> Format.pp_print_string ppf "\xe2\x8a\xa4"
    | H a -> Format.fprintf ppf "<%a" I.pp a

  let to_string p = Format.asprintf "%a" pp p

  (** {1 OFE structure (§6.2)}

      [SProp] is an ordered family of equivalences: [dist α p q] is the
      α-level equality [p ≡α q ≜ ∀β ≤ α, (p β ↔ q β)].  The relations
      coarsen as [α] decreases, as required. *)

  let dist alpha p q = equal p q || (holds_at p alpha && holds_at q alpha)

  (** [contractive_at alpha f p q]: one sampled instance of the
      contractiveness condition of Theorem 6.3 —
      if [∀β < α. p ≡β q] then [f p ≡α f q].
      On cuts, [∀β < α. p ≡β q] is equivalent to [dist] at every
      predecessor; we use the direct characterization: [p] and [q] agree
      strictly below [alpha]. *)
  let agree_below alpha p q =
    equal p q
    || ((not (holds_at p alpha)) && not (holds_at q alpha))
    ||
    (* both hold at all β < alpha: heights ≥ alpha *)
    (match p, q with
    | Top, Top -> true
    | H a, H b -> I.compare alpha a <= 0 && I.compare alpha b <= 0
    | Top, H b -> I.compare alpha b <= 0
    | H a, Top -> I.compare alpha a <= 0)

  let contractive_at alpha f p q =
    (not (agree_below alpha p q)) || dist alpha (f p) (f q)

  (** Banach fixed point (Theorem 6.3): a contractive [f] has a unique
      fixed point.  Finite iteration from ⊥ stalls at limit indices
      (that is the whole point of transfinite step-indexing), but
      iteration from ⊤ converges for contractive maps on cuts; we try
      both and verify the fixed-point equation on the result. *)
  let fixpoint ?(fuel = 1024) f =
    let rec iter x n =
      if n = 0 then None
      else
        let y = f x in
        if equal x y then Some x else iter y (n - 1)
    in
    match iter Top fuel with Some r -> Some r | None -> iter ff fuel

  (** The finite approximation chain [⊥, f ⊥, f² ⊥, …] — used by tests to
      exhibit how finite iteration approaches but does not reach limit
      fixed points. *)
  let iterates f n =
    let rec go x k acc = if k = 0 then List.rev acc else go (f x) (k - 1) (x :: acc) in
    go ff n []
end
