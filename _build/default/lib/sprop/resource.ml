(** Resource algebras (partial commutative monoids).

    Separation logic propositions in (Transfinite) Iris are predicates
    over resources drawn from a resource algebra.  We implement the
    discrete fragment — enough for the program logics of §4 and §5:
    heap fragments, exclusive tokens (the [src(e)] resource), and ordinal
    time credits.  Each algebra must enumerate the decompositions of a
    resource so that separating conjunction is computable. *)

module Ord = Tfiris_ordinal.Ord

module type S = sig
  type t

  val unit : t
  val equal : t -> t -> bool

  val compose : t -> t -> t option
  (** Partial, commutative, associative composition; [None] means the
      combination is invalid (e.g. two exclusive tokens). *)

  val splits : t -> (t * t) list
  (** All pairs [(a, b)] with [compose a b = Some r].  Finite by
      construction for every algebra here. *)

  val core : t -> t
  (** The duplicable part of a resource: [core r ⋅ r = r] and
      [core (core r) = core r].  Exclusive resources have unit core;
      agreement is its own core.  Interprets the persistence modality
      [□] in {!Upred}. *)

  val pp : Format.formatter -> t -> unit
end

(** The exclusive resource algebra over a value type: at most one party
    can own the token.  Models [src(e)] ownership. *)
module Excl (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  include S

  val token : V.t -> t
end = struct
  type t = V.t option

  let unit = None
  let token v = Some v

  let equal a b =
    match a, b with
    | None, None -> true
    | Some x, Some y -> V.equal x y
    | None, Some _ | Some _, None -> false

  let compose a b =
    match a, b with
    | None, x | x, None -> Some x
    | Some _, Some _ -> None

  let splits = function
    | None -> [ (None, None) ]
    | Some v -> [ (Some v, None); (None, Some v) ]

  let core _ = None

  let pp ppf = function
    | None -> Format.pp_print_string ppf "\xce\xb5"
    | Some v -> Format.fprintf ppf "ex(%a)" V.pp v
end

(** Ordinal time credits with Hessenberg composition — the resource [$α]
    of §5.1.  Commutativity of [⊕] is exactly what makes this a
    legitimate resource algebra ([TSplit]: [$(α ⊕ β) ⇔ $α ∗ $β]). *)
module Credits : sig
  include S with type t = Ord.t

  val of_ord : Ord.t -> t
end = struct
  type t = Ord.t

  let unit = Ord.zero
  let equal = Ord.equal
  let of_ord a = a
  let compose a b = Some (Ord.hsum a b)

  (* All Hessenberg decompositions: split each CNF coefficient. *)
  let splits a =
    let term_options (e, c) =
      List.init (c + 1) (fun i -> ((e, i), (e, c - i)))
    in
    let rebuild parts =
      Ord.hsum_list
        (List.filter_map
           (fun (e, c) ->
             if c = 0 then None else Some (Ord.hprod (Ord.omega_pow e) (Ord.of_int c)))
           parts)
    in
    let rec go = function
      | [] -> [ ([], []) ]
      | t :: rest ->
        let tails = go rest in
        List.concat_map
          (fun (l, r) ->
            List.map (fun (tl, tr) -> (l :: tl, r :: tr)) tails)
          (term_options t)
    in
    List.map (fun (l, r) -> (rebuild l, rebuild r)) (go (Ord.terms a))

  let core _ = Ord.zero
  let pp ppf a = Format.fprintf ppf "$%a" Ord.pp a
end

(** Product of two resource algebras. *)
module Prod (A : S) (B : S) : sig
  include S with type t = A.t * B.t
end = struct
  type t = A.t * B.t

  let unit = (A.unit, B.unit)
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2

  let compose (a1, b1) (a2, b2) =
    match A.compose a1 a2, B.compose b1 b2 with
    | Some a, Some b -> Some (a, b)
    | None, _ | _, None -> None

  let splits (a, b) =
    List.concat_map
      (fun (a1, a2) ->
        List.map (fun (b1, b2) -> ((a1, b1), (a2, b2))) (B.splits b))
      (A.splits a)

  let core (a, b) = (A.core a, B.core b)
  let pp ppf (a, b) = Format.fprintf ppf "(%a, %a)" A.pp a B.pp b
end

(** Finite partial maps with disjoint union — heap fragments.  Keys and
    values are abstract; every binding is exclusive (the [ℓ ↦ v]
    points-to assertion). *)
module Heap (K : sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end) (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  include S

  val singleton : K.t -> V.t -> t
  val of_list : (K.t * V.t) list -> t
  val bindings : t -> (K.t * V.t) list
  val lookup : K.t -> t -> V.t option
end = struct
  module M = Map.Make (K)

  type t = V.t M.t

  let unit = M.empty
  let singleton k v = M.singleton k v
  let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
  let bindings = M.bindings
  let lookup k m = M.find_opt k m
  let equal = M.equal V.equal

  let compose a b =
    let clash = ref false in
    let merged =
      M.union
        (fun _ _ _ ->
          clash := true;
          None)
        a b
    in
    if !clash then None else Some merged

  let splits m =
    List.fold_left
      (fun acc (k, v) ->
        List.concat_map
          (fun (l, r) -> [ (M.add k v l, r); (l, M.add k v r) ])
          acc)
      [ (M.empty, M.empty) ]
      (M.bindings m)

  let core _ = M.empty

  let pp ppf m =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (k, v) -> Format.fprintf ppf "%a \xe2\x86\xa6 %a" K.pp k V.pp v))
      (M.bindings m)
end

(** The agreement resource algebra: all owners must agree on the value.
    [Agree(V)] is how Iris models knowledge that can be shared but not
    changed — e.g. the interpretation of an invariant name. *)
module Agree (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  include S

  val of_value : V.t -> t
  val value : t -> V.t option
end = struct
  type t =
    | Empty
    | Ag of V.t

  let unit = Empty
  let of_value v = Ag v
  let value = function Ag v -> Some v | Empty -> None

  let equal a b =
    match a, b with
    | Empty, Empty -> true
    | Ag x, Ag y -> V.equal x y
    | (Empty | Ag _), _ -> false

  let compose a b =
    match a, b with
    | Empty, x | x, Empty -> Some x
    | Ag x, Ag y -> if V.equal x y then Some (Ag x) else None

  let splits = function
    | Empty -> [ (Empty, Empty) ]
    | Ag v -> [ (Empty, Ag v); (Ag v, Empty); (Ag v, Ag v) ]

  let core a = a (* agreement is freely duplicable *)

  let pp ppf = function
    | Empty -> Format.pp_print_string ppf "\xce\xb5"
    | Ag v -> Format.fprintf ppf "ag(%a)" V.pp v
end

(** Fractional permissions: a rational share in (0, 1] of a value.
    Shares of the same value add; exceeding 1 is invalid.  The classic
    fractional points-to [ℓ ↦{q} v]. *)
module Frac (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  include S

  val share : num:int -> den:int -> V.t -> t
  val whole : V.t -> t
  val is_whole : t -> bool
end = struct
  (* a fraction num/den in lowest terms, with 0 < num/den ≤ 1 *)
  type t =
    | None_
    | Share of int * int * V.t

  let rec gcd a b = if b = 0 then a else gcd b (a mod b)

  let norm num den v =
    if num <= 0 || den <= 0 then invalid_arg "Frac.share: non-positive"
    else if num > den then invalid_arg "Frac.share: share exceeds 1"
    else
      let g = gcd num den in
      Share (num / g, den / g, v)

  let unit = None_
  let share ~num ~den v = norm num den v
  let whole v = Share (1, 1, v)
  let is_whole = function Share (1, 1, _) -> true | Share _ | None_ -> false

  let equal a b =
    match a, b with
    | None_, None_ -> true
    | Share (n1, d1, v1), Share (n2, d2, v2) ->
      n1 = n2 && d1 = d2 && V.equal v1 v2
    | (None_ | Share _), _ -> false

  let compose a b =
    match a, b with
    | None_, x | x, None_ -> Some x
    | Share (n1, d1, v1), Share (n2, d2, v2) ->
      if not (V.equal v1 v2) then None
      else
        let num = (n1 * d2) + (n2 * d1) in
        let den = d1 * d2 in
        if num > den then None else Some (norm num den v1)

  (* [splits] cannot be complete here (a fraction splits in infinitely
     many ways); we enumerate the trivial splits plus the halving —
     enough for ownership checking, and making [sep] an
     under-approximation for this algebra (a documented deviation from
     the [S] contract). *)
  let splits = function
    | None_ -> [ (None_, None_) ]
    | Share (n, d, v) as s ->
      [ (s, None_); (None_, s) ]
      @ (match norm n (2 * d) v with
        | half -> [ (half, half) ]
        | exception Invalid_argument _ -> [])

  let core _ = None_

  let pp ppf = function
    | None_ -> Format.pp_print_string ppf "\xce\xb5"
    | Share (n, d, v) -> Format.fprintf ppf "{%d/%d}%a" n d V.pp v
end
