(** The finite model: step-indexed propositions over natural-number
    indices — the standard model of Iris (§2.4), the baseline the
    transfinite model is compared against. *)

include Cut.S with type index = int

val of_int : int -> t

val sup_family :
  ?samples:int -> limit:Tfiris_ordinal.Ord.t -> (int -> t) -> t
(** [sup_family ~limit f] is [∃n:ℕ. f n] in the finite model.  [limit]
    is the family's supremum {e as an ordinal} (shared with
    {!Height.sup_family} so one formula can be read in both models).  A
    transfinite declared supremum means the finite heights are unbounded
    in ℕ, and an unbounded union of cuts of ℕ is everything: the result
    collapses to [Top] — exactly why the finite model proves
    [∃n. ▷ⁿ False] (§2.7).  Raises {!Height.Bad_family} on members
    exceeding a finite declared limit. *)
