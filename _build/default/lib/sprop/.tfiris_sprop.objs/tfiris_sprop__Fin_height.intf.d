lib/sprop/fin_height.mli: Cut Tfiris_ordinal
