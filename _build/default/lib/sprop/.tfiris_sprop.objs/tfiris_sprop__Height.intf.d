lib/sprop/height.mli: Cut Tfiris_ordinal
