lib/sprop/fin_height.ml: Cut Height Index Printf Tfiris_ordinal
