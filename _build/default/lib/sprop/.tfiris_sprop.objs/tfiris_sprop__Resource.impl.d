lib/sprop/resource.ml: Format List Map Tfiris_ordinal
