lib/sprop/upred.ml: Hashtbl Height List Resource Tfiris_ordinal
