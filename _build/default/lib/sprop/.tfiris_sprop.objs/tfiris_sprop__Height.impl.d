lib/sprop/height.ml: Cut Format Index Tfiris_ordinal
