lib/sprop/cut.ml: Format Index List
