lib/sprop/index.ml: Format Int Stdlib Tfiris_ordinal
