(** The transfinite model: step-indexed propositions over ordinal
    indices ([SProp] of §6.1), plus suprema of ℕ-indexed families — the
    operation whose availability powers the existential property
    (Theorem 6.2). *)

include Cut.S with type index = Tfiris_ordinal.Ord.t

val of_ord : Tfiris_ordinal.Ord.t -> t

exception Bad_family of string

val sup_family :
  ?samples:int -> limit:Tfiris_ordinal.Ord.t -> (int -> t) -> t
(** [sup_family ~limit f] is [∃n:ℕ. f n], the supremum of the heights
    [f 0, f 1, …].  The supremum of an arbitrary computable family is
    undecidable, so the caller declares it ([limit]) — the executable
    analogue of a side condition discharged in Coq.  The declaration is
    validated on [samples] members (raises {!Bad_family} on a member
    exceeding [limit]); a [Top] member makes the supremum [Top]
    regardless. *)
