(** A lexicographic termination certificate, fully online: doubly
    dynamic nested loops under [ω³] credits.

    §5.1's example needs [$(ω ⊕ n_u)] because one loop bound is
    dynamic.  Here {e both} bounds are dynamic — the outer count comes
    from [u ()], and each inner count is recomputed by [f ()] per outer
    iteration — so no single limit instantiation suffices; the
    certificate must descend lexicographically, learning a new inner
    bound at the start of every outer round.

    The program keeps both counters in {e one} reference holding a pair,
    so each loop transition updates the lexicographic state atomically
    (one store), and the ordinal measure

    {v   μ = ω²·i ⊕ ω·j   v}

    read off the heap strictly drops at every store: the outer
    transition [(i, 0) ↦ (i-1, f ())] trades an [ω²] for finitely many
    [ω]s.  {!Wp.measured} turns this measure into a checked credit
    strategy with no oracle and no pre-running: [ω³] credits cover every
    behaviour of [u] and [f]. *)

module Ord = Tfiris_ordinal.Ord
open Tfiris_shl

(** The nested loop.  [u] computes the outer bound, [f] the (per-round)
    inner bound; the counter pair lives in the first allocation. *)
let program ~(u : Ast.expr) ~(f : Ast.expr) : Ast.expr =
  Ast.lets
    [ ("u", u); ("f", f) ]
    (Parser.parse_exn
       {|
let r = ref (u (), 0) in
(rec outer w.
   let c = !r in
   if fst c = 0 then () else (
     r := (fst c - 1, f ());
     (rec inner v.
        let c2 = !r in
        if snd c2 = 0 then () else (r := (fst c2, snd c2 - 1); inner v))
       ();
     outer w))
  ()
|})

(** The counter reference is the first allocation of the program
    (locations are deterministic); before it exists the measure is the
    static cap [ω³]. *)
let measure (cfg : Step.config) : Ord.t option =
  match Heap.lookup 0 cfg.Step.heap with
  | Some (Ast.Pair (Ast.Int i, Ast.Int j)) when i >= 0 && j >= 0 ->
    Some
      (Ord.hsum
         (Ord.hprod (Ord.omega_pow Ord.two) (Ord.of_int i))
         (Ord.hprod Ord.omega (Ord.of_int j)))
  | Some _ -> None
  | None -> Some (Ord.omega_pow (Ord.of_int 3))

(** Verify the nested loop with the measured (lexicographic) strategy.
    [pad] must cover the pure steps between consecutive stores; the
    default is ample. *)
let verify ?(pad = 64) ~u ~f () : Wp.verdict =
  Wp.run_measured ~measure ~pad (Step.config (program ~u ~f))

(** The finite-credit baseline for comparison. *)
let verify_finite ~budget ~u ~f () : Wp.verdict =
  Wp.run ~credits:(Ord.of_int budget) Wp.countdown (Step.config (program ~u ~f))
