(** The reentrant event loop case study (§5.2).

    [run q] pops and executes tasks; tasks may call [addtask] and grow
    the queue while it is being drained, so the queue length is not a
    termination measure.  The paper's argument: every [addtask] deposits
    a constant [c] of credits with the loop, so the total work is
    bounded by the (ordinal) credit supplied by the client — "even
    though extra jobs may be added while run executes, only a bounded
    number can ultimately be added because the total number of credits
    available is an ordinal".

    We express clients as SHL programs against the event-loop API and
    verify their termination with transfinite credits; the adversarial
    client chooses {e dynamically} (from a computed value) how many
    reentrant tasks to spawn, which is exactly the situation where a
    fixed finite budget cannot be chosen compositionally. *)

module Ord = Tfiris_ordinal.Ord
open Tfiris_shl

(** A client that adds [n] top-level tasks, each of which re-adds [m]
    leaf tasks when executed (reentrancy), then runs the loop. *)
let reentrant_client ~(n : int) ~(m : int) : Ast.expr =
  let src =
    Printf.sprintf
      {|
let q = mkloop () in
let leaf = fun u -> () in
let spawner = fun u ->
  (rec go i. if i < %d then (addtask q leaf; go (i + 1)) else ()) 0
in
(rec go i. if i < %d then (addtask q spawner; go (i + 1)) else ()) 0;
run q
|}
      m n
  in
  Prog.event_loop_ctx (Parser.parse_exn src)

(** A client whose reentrancy degree is computed at run time: first
    evaluates [u ()] to get [k], then spawns one task that re-adds [k]
    leaves.  No finite credit chosen from the client's code alone covers
    all behaviours of [u]. *)
let dynamic_client ~(u : Ast.expr) : Ast.expr =
  Prog.event_loop_ctx
    (Ast.Let
       ( "u",
         u,
         Parser.parse_exn
           {|
let q = mkloop () in
let k = u () in
let leaf = fun v -> () in
addtask q (fun v ->
  (rec go i. if i < k then (addtask q leaf; go (i + 1)) else ()) 0);
run q
|}
       ))

(** Verify termination of a client with credit [ω·2]: one [ω] pot for
    the (dynamically discovered) volume of queued work, one for the
    driver glue; the adaptive strategy instantiates each limit at the
    moment the remaining work becomes determined. *)
let verify_client ?(credit = Ord.mul Ord.omega Ord.two) (client : Ast.expr) :
    Wp.verdict =
  Wp.run ~credits:credit (Wp.adaptive ()) (Step.config client)

(** The finite-credit attempt: a fixed budget countdown. *)
let verify_client_finite ~budget (client : Ast.expr) : Wp.verdict =
  Wp.run ~credits:(Ord.of_int budget) Wp.countdown (Step.config client)
