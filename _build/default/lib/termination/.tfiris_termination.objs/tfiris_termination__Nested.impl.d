lib/termination/nested.ml: Ast Heap Parser Step Tfiris_ordinal Tfiris_shl Wp
