lib/termination/wp.mli: Ast Format Step Tfiris_ordinal Tfiris_shl
