lib/termination/triple.ml: Ast Ctx Format List Printf Prog Step Tfiris_ordinal Tfiris_shl Wp
