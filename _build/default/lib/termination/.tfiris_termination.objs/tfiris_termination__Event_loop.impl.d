lib/termination/event_loop.ml: Ast Parser Printf Prog Step Tfiris_ordinal Tfiris_shl Wp
