lib/termination/wp.ml: Array Ast Format Option Pretty Printf Step Tfiris_ordinal Tfiris_shl
