(** Lemma 2.3, executably: termination by simulation into ordinals.

    §2.6 of the paper observes that the source of a simulation need not
    be a programming language — instantiating it with the inverse of a
    well-founded relation (e.g. [>] on ordinals) turns the simulation
    relation into a termination proof: every step of the target is
    matched by a strictly descending step of the ordinal source, and
    well-founded descent has no infinite chains.

    A {!measured} system packages a finitely-branching transition system
    with an ordinal measure; {!validate} checks the lockstep simulation
    (every successor strictly smaller) on the reachable fragment, and
    {!run} executes the system under {e any} (possibly adversarial)
    successor choice — termination of [run] is unconditional once
    [validate]'s invariant holds, and [run] re-validates the descent at
    every step so that even unvalidated systems cannot make it spin. *)

module Ord = Tfiris_ordinal.Ord

type 'a t = {
  state_pp : Format.formatter -> 'a -> unit;
  step : 'a -> 'a list;  (** finitely branching; [[]] = terminated *)
  measure : 'a -> Ord.t;
}

type 'a violation = {
  from_state : 'a;
  to_state : 'a;
  from_measure : Ord.t;
  to_measure : Ord.t;
}

(** Check the descent invariant on all states reachable from [start]
    within [bound] expansions (the executable face of the simulation
    obligation [∀ t {tgt t'. measure t > measure t']). *)
let validate ?(bound = 10_000) (sys : 'a t) (start : 'a) :
    ('a violation option, string) result =
  let rec go frontier seen n =
    match frontier with
    | [] -> Ok None
    | _ when n <= 0 -> Error "state bound exhausted before full validation"
    | s :: rest -> (
      let m = sys.measure s in
      let succs = sys.step s in
      match
        List.find_opt (fun s' -> not (Ord.lt (sys.measure s') m)) succs
      with
      | Some bad ->
        Ok
          (Some
             {
               from_state = s;
               to_state = bad;
               from_measure = m;
               to_measure = sys.measure bad;
             })
      | None ->
        let fresh = List.filter (fun s' -> not (List.mem s' seen)) succs in
        go (rest @ fresh) (fresh @ seen) (n - 1))
  in
  go [ start ] [ start ] bound

(** Run to termination under a successor-choice function, re-validating
    the strict descent at every step; the descent makes fuel
    unnecessary.  Returns the visited states (including the terminal
    one) or the violation that stopped the run. *)
let run (sys : 'a t) ~(choose : 'a list -> 'a) (start : 'a) :
    ('a list, 'a violation) result =
  let rec go s acc =
    match sys.step s with
    | [] -> Ok (List.rev (s :: acc))
    | succs ->
      let s' = choose succs in
      let m = sys.measure s and m' = sys.measure s' in
      if Ord.lt m' m then go s' (s :: acc)
      else
        Error
          { from_state = s; to_state = s'; from_measure = m; to_measure = m' }
  in
  go start []

(** Length of the run under a choice function. *)
let run_length sys ~choose start =
  match run sys ~choose start with
  | Ok states -> Some (List.length states - 1)
  | Error _ -> None
