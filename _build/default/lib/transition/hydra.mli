(** The Kirby–Paris Hydra game, as a measured transition system.

    Chopping a head strictly decreases the ordinal measure
    [μ(node ts) = ⊕ ω^(μ t)], so the hydra dies under every strategy of
    Hercules and every regrowth factor — Lemma 2.3 in its most vivid
    form.  Careful with deep hydras: [line 3] has measure [ω^ω^ω] and a
    correspondingly astronomical (but finite!) game length. *)

module Ord = Tfiris_ordinal.Ord

type tree = Node of tree list

val leaf : tree
val size : tree -> int
val heads : tree -> int
val measure : tree -> Ord.t
val pp : Format.formatter -> tree -> unit

val chops : regrow:int -> tree -> tree list
(** All hydras reachable by chopping one head, with [regrow] copies of
    the maimed limb grown at the grandparent (standard rules: root-level
    heads regrow nothing). *)

val system : regrow:int -> tree Measure.t

val line : int -> tree
(** A path of the given length under the root. *)

val bush : width:int -> depth:int -> tree

val choose_first : tree list -> tree
val choose_fattest : tree list -> tree
(** Adversarial Hercules: keep the hydra as big as possible. *)

val play :
  ?regrow:int ->
  choose:(tree list -> tree) ->
  tree ->
  (int, tree Measure.violation) result
(** Play to the death; [Ok n] is the number of chops. *)
