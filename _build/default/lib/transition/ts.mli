(** Finite transition systems — the abstract setting of §2.

    States are [0 .. num_states-1]; result states carry a Boolean and
    must have no successors.  Refinements are decided by exhaustive
    model checking, providing ground truth against which the simulation
    checkers are property-tested. *)

type t = {
  num_states : int;
  initial : int;
  step : int -> int list;  (** successor states (may be empty) *)
  result : int -> bool option;  (** [Some b] iff the state is the value [b] *)
}

val make :
  num_states:int ->
  initial:int ->
  edges:(int * int) list ->
  results:(int * bool) list ->
  t
(** Raises [Invalid_argument] on out-of-range states or result states
    with successors. *)

val reachable : t -> int -> bool array
val evaluates_to : t -> bool -> bool
(** Some execution from the initial state ends in this Boolean. *)

val diverges : t -> bool
(** Some execution is infinite (a reachable cycle). *)

val result_refinement : target:t -> source:t -> bool
(** §2.1's result refinement, by brute force. *)

val tp_refinement : target:t -> source:t -> bool
(** §2.1's termination-preserving refinement, by brute force. *)
