lib/transition/ts.mli:
