lib/transition/measure.mli: Format Tfiris_ordinal
