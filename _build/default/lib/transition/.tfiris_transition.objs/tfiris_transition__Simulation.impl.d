lib/transition/simulation.ml: Array Bool List Tfiris_ordinal Ts
