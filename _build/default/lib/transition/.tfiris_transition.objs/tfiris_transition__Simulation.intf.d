lib/transition/simulation.mli: Tfiris_ordinal Ts
