lib/transition/ts.ml: Array List
