lib/transition/hydra.mli: Format Measure Tfiris_ordinal
