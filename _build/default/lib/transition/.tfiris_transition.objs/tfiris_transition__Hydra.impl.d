lib/transition/hydra.ml: Format List Measure Tfiris_ordinal
