lib/transition/measure.ml: Format List Tfiris_ordinal
