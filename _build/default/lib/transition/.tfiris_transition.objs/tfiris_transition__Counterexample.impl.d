lib/transition/counterexample.ml: List
