(** Simulation relations between finite transition systems (§2.2–§2.3):
    the coinductive lock-step simulation [⪯] (greatest fixpoint), its
    step-indexed approximations [⪯ᵢ], and the ordinal-indexed [⪯_α]
    (which stabilizes at the gfp on finite systems — the dilemma needs
    infinite branching, see {!Counterexample}). *)

type rel = bool array array
(** [r.(t).(s)]: target state [t] is related to source state [s]. *)

val full : target:Ts.t -> source:Ts.t -> rel
(** [⪯₀]: everything related. *)

val unfold : target:Ts.t -> source:Ts.t -> rel -> rel
(** One unfolding of the simulation functor (the body of §2.2's
    coinductive definition). *)

val rel_equal : rel -> rel -> bool

val approx : target:Ts.t -> source:Ts.t -> int -> rel
(** The step-indexed approximation [⪯ᵢ = Fⁱ(⊤)]. *)

val gfp : target:Ts.t -> source:Ts.t -> rel * int
(** The coinductive simulation with the stage at which the chain
    stabilized. *)

val approx_ord : target:Ts.t -> source:Ts.t -> Tfiris_ordinal.Ord.t -> rel
(** [⪯_α]: finite indices iterate; at and beyond [ω] the chain over a
    finite state space has stabilized. *)

val holds : rel -> Ts.t -> Ts.t -> bool
val simulates : target:Ts.t -> source:Ts.t -> bool

val replay : target:Ts.t -> source:Ts.t -> int list -> int list option
(** Extract a source run replaying a finite target run along the gfp —
    the constructive content of the adequacy proofs (§2.5). *)
