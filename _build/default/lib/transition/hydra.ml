(** The Hydra game (Kirby–Paris), as a measured transition system.

    A hydra is a finite rooted tree.  Hercules chops a head (a leaf);
    if the head was attached at depth ≥ 2, the hydra regrows [n] copies
    of the subtree that contained it (we use a fixed regrowth factor per
    step).  The hydra always dies — regardless of which heads Hercules
    chops and however fast the regrowth — because the tree's ordinal
    measure

    {v   μ(node ts) = ⊕_{t ∈ ts} ω^(μ t)   v}

    strictly decreases at every chop.  This is {!Measure}'s Lemma 2.3
    instance par excellence: the target (the game) is simulated in
    lockstep by the ordinal source, hence terminates, even though the
    number of heads can grow enormously along the way. *)

module Ord = Tfiris_ordinal.Ord

type tree = Node of tree list

let leaf = Node []
let size (Node _ as t) =
  let rec go (Node ts) = 1 + List.fold_left (fun a t -> a + go t) 0 ts in
  go t

let heads (Node _ as t) =
  let rec go (Node ts) =
    if ts = [] then 1 else List.fold_left (fun a t -> a + go t) 0 ts
  in
  go t

(** μ(node ts) = ⊕ ω^(μ t): Hessenberg so the order of children is
    irrelevant. *)
let rec measure (Node ts) : Ord.t =
  Ord.hsum_list (List.map (fun t -> Ord.omega_pow (measure t)) ts)

let rec pp ppf (Node ts) =
  if ts = [] then Format.pp_print_string ppf "\xe2\x80\xa2"
  else
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp)
      ts

(** All hydras reachable by chopping one head, with regrowth [n]:
    - a leaf child of the root disappears;
    - a leaf at depth ≥ 2: its parent loses the leaf, and the
      grandparent gains [n] extra copies of the (post-chop) parent. *)
let chops ~regrow (Node roots) : tree list =
  (* chop inside a grandchild context: returns possible replacements of
     a node together with the list of sibling copies to regrow *)
  let rec chop_in (Node ts) : (tree * tree list) list =
    (* either chop a leaf child of this node (regrow copies of the
       post-chop node at our parent)... *)
    let here =
      List.concat_map
        (fun (i, child) ->
          match child with
          | Node [] ->
            let remaining = List.filteri (fun j _ -> j <> i) ts in
            let after = Node remaining in
            [ (after, List.init regrow (fun _ -> after)) ]
          | Node _ -> [])
        (List.mapi (fun i c -> (i, c)) ts)
    in
    (* ...or recurse into a non-leaf child; the copies regrow HERE *)
    let deeper =
      List.concat_map
        (fun (i, child) ->
          match child with
          | Node [] -> []
          | Node _ ->
            List.map
              (fun (child', copies) ->
                let ts' =
                  List.mapi (fun j c -> if j = i then child' else c) ts
                in
                (Node (ts' @ copies), []))
              (chop_in child))
        (List.mapi (fun i c -> (i, c)) ts)
    in
    here @ deeper
  in
  (* At the root: chopping a root-level leaf just removes it, no
     regrowth (the standard rule). *)
  let root_level =
    List.concat_map
      (fun (i, child) ->
        match child with
        | Node [] -> [ Node (List.filteri (fun j _ -> j <> i) roots) ]
        | Node _ -> [])
      (List.mapi (fun i c -> (i, c)) roots)
  in
  let deeper =
    List.concat_map
      (fun (i, child) ->
        match child with
        | Node [] -> []
        | Node _ ->
          List.map
            (fun (child', copies) ->
              let roots' =
                List.mapi (fun j c -> if j = i then child' else c) roots
              in
              Node (roots' @ copies))
            (chop_in child))
      (List.mapi (fun i c -> (i, c)) roots)
  in
  root_level @ deeper

(** The game as a measured transition system. *)
let system ~regrow : tree Measure.t =
  { Measure.state_pp = pp; step = chops ~regrow; measure }

(** Some hydras. *)
let line n =
  (* a path of length n *)
  let rec go k = if k = 0 then leaf else Node [ go (k - 1) ] in
  Node [ go n ]

let bush ~width ~depth =
  let rec go d = if d = 0 then leaf else Node (List.init width (fun _ -> go (d - 1))) in
  go depth

(** Greedy strategies for Hercules (the point is that {e any} strategy
    wins). *)
let choose_first = function s :: _ -> s | [] -> invalid_arg "no successor"

let choose_fattest succs =
  match succs with
  | [] -> invalid_arg "no successor"
  | s :: rest ->
    (* adversarial: keep the hydra as big as possible *)
    List.fold_left (fun best s' -> if size s' > size best then s' else best) s rest

(** Play to the death; the result is the number of chops. *)
let play ?(regrow = 2) ~choose (h : tree) : (int, tree Measure.violation) result
    =
  match Measure.run (system ~regrow) ~choose h with
  | Ok states -> Ok (List.length states - 1)
  | Error v -> Error v
