(** Lemma 2.3, executably: termination by simulation into ordinals.

    §2.6 instantiates the simulation's source with the ordinals under
    [>]: every target step matched by a strictly descending ordinal step
    is a termination proof.  {!run} re-validates the descent at every
    step, so it needs no fuel — an accepted run cannot be infinite. *)

module Ord = Tfiris_ordinal.Ord

type 'a t = {
  state_pp : Format.formatter -> 'a -> unit;
  step : 'a -> 'a list;  (** finitely branching; [[]] = terminated *)
  measure : 'a -> Ord.t;
}

type 'a violation = {
  from_state : 'a;
  to_state : 'a;
  from_measure : Ord.t;
  to_measure : Ord.t;
}

val validate :
  ?bound:int -> 'a t -> 'a -> ('a violation option, string) result
(** Check the descent invariant on the reachable fragment (bounded
    exploration): [Ok None] = validated, [Ok (Some v)] = counterexample,
    [Error _] = bound exhausted. *)

val run : 'a t -> choose:('a list -> 'a) -> 'a -> ('a list, 'a violation) result
(** Run to termination under any successor choice, re-validating strict
    descent at every step.  Returns the visited states or the violation
    that stopped the run. *)

val run_length : 'a t -> choose:('a list -> 'a) -> 'a -> int option
