(** Finite transition systems — the abstract setting of §2.

    The paper develops its key idea on abstract "programs": small-step
    transition systems whose only values are Booleans.  We implement
    finite ones explicitly (states are [0 .. num_states-1]) so that
    refinements and simulations can be decided by exhaustive model
    checking; the library's simulation checkers are then validated
    against this ground truth by property tests. *)

type t = {
  num_states : int;
  initial : int;
  step : int -> int list;  (** successor states (may be empty) *)
  result : int -> bool option;
      (** [Some b] iff the state is the Boolean value [b]; result states
          must have no successors. *)
}

let make ~num_states ~initial ~edges ~results =
  let succ = Array.make num_states [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= num_states || b < 0 || b >= num_states then
        invalid_arg "Ts.make: edge out of range";
      succ.(a) <- b :: succ.(a))
    edges;
  let res = Array.make num_states None in
  List.iter
    (fun (s, b) ->
      if s < 0 || s >= num_states then invalid_arg "Ts.make: result out of range";
      res.(s) <- Some b)
    results;
  Array.iteri
    (fun s r ->
      if r <> None && succ.(s) <> [] then
        invalid_arg "Ts.make: result state with successors")
    res;
  {
    num_states;
    initial;
    step = (fun s -> succ.(s));
    result = (fun s -> res.(s));
  }

(** States reachable from [s]. *)
let reachable ts s =
  let seen = Array.make ts.num_states false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter go (ts.step s)
    end
  in
  go s;
  seen

(** [evaluates_to ts b]: some execution from the initial state ends in
    the Boolean value [b]. *)
let evaluates_to ts b =
  let seen = reachable ts ts.initial in
  let found = ref false in
  Array.iteri (fun s r -> if r && ts.result s = Some b then found := true) seen;
  !found

(** [diverges ts]: some execution from the initial state is infinite.
    In a finite system this is equivalent to reaching a cycle, decided
    by DFS. *)
let diverges ts =
  let color = Array.make ts.num_states 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let rec go s =
    if color.(s) = 1 then true
    else if color.(s) = 2 then false
    else begin
      color.(s) <- 1;
      (* Reaching a state that is on the DFS stack closes a cycle. *)
      let r = List.exists go (ts.step s) in
      color.(s) <- 2;
      r
    end
  in
  go ts.initial

(** {1 Refinements (§2.1)} *)

(** Result refinement: every Boolean the target can evaluate to, the
    source can evaluate to as well. *)
let result_refinement ~target ~source =
  List.for_all
    (fun b -> (not (evaluates_to target b)) || evaluates_to source b)
    [ true; false ]

(** Termination-preserving refinement: result refinement, and if the
    target diverges then the source diverges. *)
let tp_refinement ~target ~source =
  result_refinement ~target ~source
  && ((not (diverges target)) || diverges source)
