(** A fuel-indexed logical relation for SHL — the executable face of the
    §5.2 discussion of type interpretations.

    The paper explains how a type [τ] is interpreted as an Iris
    predicate, with [ref (τ)] interpreted via an (impredicative)
    invariant: the stored value satisfies [⟦τ⟧] at all times.  This is
    the famous "type-world circularity": the world (heap typing) and the
    type interpretation refer to each other, and step-indexing breaks
    the circle.

    Here the circle is broken the same way, executably: {!member} is
    indexed by fuel, and following a reference {e consumes} one unit —
    so a cyclic store (Landin's knot!) gets a well-defined, monotone
    approximation at every index instead of an infinite regress.
    Safety-style semantic typing ({!expr_ok}) treats running out of fuel
    as "safe so far" — precisely the finite-prefix reading of safety
    properties from the paper's introduction — so the knot's well-typed
    divergence is {e accepted} while genuinely ill-typed programs get
    stuck and are rejected. *)

open Tfiris_shl

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_prod of ty * ty
  | T_sum of ty * ty
  | T_fun of ty * ty
  | T_ref of ty

let rec pp_ty ppf = function
  | T_unit -> Format.pp_print_string ppf "unit"
  | T_bool -> Format.pp_print_string ppf "bool"
  | T_int -> Format.pp_print_string ppf "int"
  | T_prod (a, b) -> Format.fprintf ppf "(%a * %a)" pp_ty a pp_ty b
  | T_sum (a, b) -> Format.fprintf ppf "(%a + %a)" pp_ty a pp_ty b
  | T_fun (a, b) -> Format.fprintf ppf "(%a -> %a)" pp_ty a pp_ty b
  | T_ref a -> Format.fprintf ppf "ref %a" pp_ty a

(** Canonical inhabitants used to test function values.  References
    cannot be conjured without a heap, so [T_ref] yields no samples —
    functions over references are tested only through their uses in the
    program itself. *)
let rec samples (t : ty) : Ast.value list =
  match t with
  | T_unit -> [ Ast.Unit ]
  | T_bool -> [ Ast.Bool true; Ast.Bool false ]
  | T_int -> [ Ast.Int 0; Ast.Int 1; Ast.Int (-3) ]
  | T_prod (a, b) ->
    List.concat_map
      (fun va -> List.map (fun vb -> Ast.Pair (va, vb)) (samples b))
      (samples a)
  | T_sum (a, b) ->
    List.map (fun v -> Ast.Inj_l v) (samples a)
    @ List.map (fun v -> Ast.Inj_r v) (samples b)
  | T_fun (_, b) -> (
    (* constant functions on a sample result *)
    match samples b with
    | [] -> []
    | vb :: _ -> [ Ast.lam_v "_x" (Ast.Val vb) ])
  | T_ref _ -> []

(** [member fuel τ v h]: the fuel-indexed value relation [v ∈ ⟦τ⟧ₖ]
    in heap [h].  Monotone in [fuel] decreasing (anti-monotone in the
    approximation order): a smaller index accepts more. *)
let rec member (fuel : int) (t : ty) (v : Ast.value) (h : Heap.t) : bool =
  match t, v with
  | T_unit, Ast.Unit | T_bool, Ast.Bool _ | T_int, Ast.Int _ -> true
  | T_prod (a, b), Ast.Pair (va, vb) -> member fuel a va h && member fuel b vb h
  | T_sum (a, _), Ast.Inj_l va -> member fuel a va h
  | T_sum (_, b), Ast.Inj_r vb -> member fuel b vb h
  | T_fun (a, b), Ast.Rec_fun _ ->
    (* test the closure on canonical arguments *)
    fuel = 0
    || List.for_all
         (fun arg ->
           expr_member (fuel - 1) b (Ast.App (Ast.Val v, Ast.Val arg)) h)
         (samples a)
  | T_ref a, Ast.Loc l -> (
    (* the invariant reading: the cell currently stores a ⟦a⟧ value;
       following the reference consumes fuel, which is what makes
       cyclic stores (Landin's knot) well-defined *)
    fuel = 0
    ||
    match Heap.lookup l h with
    | Some stored -> member (fuel - 1) a stored h
    | None -> false)
  | ( ( T_unit | T_bool | T_int | T_prod _ | T_sum _ | T_fun _ | T_ref _ ),
      _ ) ->
    false

(** [expr_member fuel τ e h]: the expression relation — run [e] in [h];
    getting stuck refutes, running out of fuel is "safe so far", and a
    value must be in the value relation (in the {e final} heap). *)
and expr_member (fuel : int) (t : ty) (e : Ast.expr) (h : Heap.t) : bool =
  match Interp.exec ~fuel:(max fuel 1) ~heap:h e with
  | Interp.Value (v, h'), _ -> member fuel t v h'
  | Interp.Out_of_fuel _, _ -> true
  | Interp.Stuck _, _ -> false

(** Semantic typing of a closed program, from the empty heap. *)
let expr_ok ?(fuel = 100_000) (t : ty) (e : Ast.expr) : bool =
  expr_member fuel t e Heap.empty

(** {1 Landin's knot}

    Recursion through the store: a [ref (unit -> unit)] is backpatched
    with a function that reads and calls it.  Well-typed (at type
    [unit]), never stuck, diverges — the program that forces [ref (τ)]'s
    interpretation to be step-indexed. *)
let landins_knot : Ast.expr =
  Parser.parse_exn
    {|
let r = ref (fun u -> ()) in
r := (fun u -> (!r) u);
(!r) ()
|}

(** A typed cyclic {e value} store: a cell containing a function that
    mentions the cell.  [member] at every finite fuel accepts it;
    an unindexed reading would regress forever. *)
let knot_heap : Ast.loc * Heap.t =
  let f = Ast.lam_v "u" (Ast.App (Ast.Load (Ast.Val (Ast.Loc 0)), Ast.unit_)) in
  (0, Heap.store 0 f Heap.empty)

(** {1 The fundamental theorem, executably}

    Connects {!Types} (syntactic inference) with the logical relation:
    a closed expression with an inferred type is semantically safe at
    that type.  [fundamental] is trivially true for ill-typed programs
    (nothing is claimed); the test suite property-checks it over
    generated programs and a handwritten corpus. *)

let rec of_shl_ty (t : Types.ty) : ty option =
  let both a b k =
    match of_shl_ty a, of_shl_ty b with
    | Some a, Some b -> Some (k a b)
    | _, _ -> None
  in
  match t with
  | Types.T_unit -> Some T_unit
  | Types.T_bool -> Some T_bool
  | Types.T_int -> Some T_int
  | Types.T_prod (a, b) -> both a b (fun a b -> T_prod (a, b))
  | Types.T_sum (a, b) -> both a b (fun a b -> T_sum (a, b))
  | Types.T_fun (a, b) -> both a b (fun a b -> T_fun (a, b))
  | Types.T_ref a -> Option.map (fun a -> T_ref a) (of_shl_ty a)
  | Types.T_var _ -> None

let fundamental ?fuel (e : Ast.expr) : bool =
  match Types.infer e with
  | Error _ -> true
  | Ok t -> (
    match of_shl_ty t with
    | None -> true
    | Some tau -> expr_ok ?fuel tau e)
