lib/safety/assertion.mli: Ast Format Heap Tfiris_shl
