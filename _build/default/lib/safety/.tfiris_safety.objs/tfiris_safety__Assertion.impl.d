lib/safety/assertion.ml: Ast Format Heap List Pretty Tfiris_shl
