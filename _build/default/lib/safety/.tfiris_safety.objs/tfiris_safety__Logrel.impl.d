lib/safety/logrel.ml: Ast Format Heap Interp List Option Parser Tfiris_shl Types
