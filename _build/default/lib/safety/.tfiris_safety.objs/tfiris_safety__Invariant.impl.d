lib/safety/invariant.ml: Ast Heap Interp List Option Step Tfiris_shl
