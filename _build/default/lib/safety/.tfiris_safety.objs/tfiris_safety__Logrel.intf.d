lib/safety/logrel.mli: Ast Format Heap Tfiris_shl Types
