lib/safety/invariant.mli: Ast Heap Interp Step Tfiris_shl
