lib/safety/triple.ml: Assertion Ast Format Heap Interp List Parser Pretty Tfiris_shl
