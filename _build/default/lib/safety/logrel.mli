(** A fuel-indexed logical relation for SHL — the executable face of the
    §5.2 type interpretations and the "type-world circularity".

    Following a reference consumes a unit of fuel, so cyclic stores
    (Landin's knot) have a well-defined approximation at every index;
    running out of fuel counts as "safe so far" — the finite-prefix
    reading of safety.  Divergent well-typed programs are accepted;
    stuck programs are refuted. *)

open Tfiris_shl

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_prod of ty * ty
  | T_sum of ty * ty
  | T_fun of ty * ty
  | T_ref of ty

val pp_ty : Format.formatter -> ty -> unit

val samples : ty -> Ast.value list
(** Canonical inhabitants used to probe function values ([T_ref] has
    none: references cannot be conjured without a heap). *)

val member : int -> ty -> Ast.value -> Heap.t -> bool
(** The fuel-indexed value relation [v ∈ ⟦τ⟧ₖ] in a heap. *)

val expr_member : int -> ty -> Ast.expr -> Heap.t -> bool
val expr_ok : ?fuel:int -> ty -> Ast.expr -> bool

val landins_knot : Ast.expr
(** Recursion through the store: typed at [unit], never stuck,
    diverges — the program that forces [ref τ] to be step-indexed. *)

val knot_heap : Ast.loc * Heap.t
(** A cyclic store value in [⟦ref (unit → unit)⟧] at every index. *)

val of_shl_ty : Types.ty -> ty option
(** Bridge from inferred syntactic types (no unification variables). *)

val fundamental : ?fuel:int -> Ast.expr -> bool
(** The fundamental theorem, executably: if {!Types.infer} succeeds the
    program is semantically safe at its type (vacuously true
    otherwise). *)
