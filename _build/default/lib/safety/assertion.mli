(** Separation-logic assertions over SHL heaps — the safety logic's
    assertion language (Figure 1, "Safety").

    Assertions are precise enough to {e enumerate}: {!models} computes
    the finite set of heap fragments satisfying an assertion, which
    turns Hoare-triple checking into exhaustive execution ({!Triple}).
    Quantifiers are bounded by explicit candidate lists — the executable
    stand-in for their Coq counterparts. *)

open Tfiris_shl

type t =
  | Emp
  | Pure of bool  (** [⌜φ⌝] for an already-decided proposition *)
  | Points_to of Ast.loc * Ast.value  (** [ℓ ↦ v] *)
  | Star of t * t
  | And of t * t
  | Or of t * t
  | Exists_in of Ast.value list * (Ast.value -> t)
  | Forall_in of Ast.value list * (Ast.value -> t)

val pp : Format.formatter -> t -> unit

val sat : t -> Heap.t -> bool
(** Exact satisfaction (ownership reading: the fragment is fully
    described — extra cells refute). *)

val models : t -> Heap.t list
(** All heap fragments satisfying the assertion. *)

val entails : t -> t -> bool

val star_list : t list -> t
val points_to_int : Ast.loc -> int -> t
