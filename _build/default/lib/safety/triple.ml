(** Hoare triples for safety, checked by exhaustive execution.

    [{P} e {v. Q v}] is checked by running [e] from {e every} model of
    [P], extended with {e every} test frame: the run must not get stuck
    (safety), must terminate within the fuel (this is the safety logic:
    non-termination within fuel is reported separately, not accepted),
    and must end in a value [v] and final heap decomposing as
    [model-of-(Q v)] ⊎ frame — so the {b frame rule is validated by
    execution}, not assumed: SHL's step relation is local, and the
    checker observes that locality on every run.

    Postconditions are assertion-valued functions of the result (the
    binder [v.] of the paper's triples). *)

open Tfiris_shl

type t = {
  pre : Assertion.t;
  expr : Ast.expr;
  post : Ast.value -> Assertion.t;
}

type failure =
  | No_models  (** the precondition is unsatisfiable: vacuous *)
  | Stuck_run of Heap.t * Ast.expr
  | Fuel_exhausted of Heap.t
  | Post_failed of Heap.t * Ast.value * Heap.t
      (** initial fragment, result, final fragment *)
  | Frame_violated of Heap.t * Heap.t
      (** the run modified or consumed the frame *)

let pp_failure ppf = function
  | No_models -> Format.pp_print_string ppf "unsatisfiable precondition"
  | Stuck_run (_, e) ->
    Format.fprintf ppf "stuck on %s" (Pretty.expr_to_string e)
  | Fuel_exhausted _ -> Format.pp_print_string ppf "fuel exhausted"
  | Post_failed (_, v, _) ->
    Format.fprintf ppf "postcondition failed for result %a" Pretty.pp_value v
  | Frame_violated _ -> Format.pp_print_string ppf "frame modified"

type verdict =
  | Valid of int  (** number of (model, frame) runs performed *)
  | Invalid of failure

let pp_verdict ppf = function
  | Valid n -> Format.fprintf ppf "valid (%d runs)" n
  | Invalid f -> Format.fprintf ppf "invalid: %a" pp_failure f

(** Default test frames: empty, a far-away singleton, two cells. *)
let default_frames =
  [
    Heap.empty;
    Heap.store 1000 (Ast.Int 7) Heap.empty;
    Heap.store 1000 (Ast.Bool true) (Heap.store 1001 Ast.Unit Heap.empty);
  ]

let check ?(fuel = 1_000_000) ?(frames = default_frames) ?(vacuous_ok = false)
    (t : t) : verdict =
  let ms = Assertion.models t.pre in
  if ms = [] && not vacuous_ok then Invalid No_models
  else
    let runs = ref 0 in
    let rec run_all = function
      | [] -> Valid !runs
      | (h0, frame) :: rest -> (
        match Heap.disjoint_union h0 frame with
        | None -> run_all rest (* incompatible combination: skip *)
        | Some h -> (
          incr runs;
          match Interp.exec ~fuel ~heap:h t.expr with
          | Interp.Stuck (_, redex), _ -> Invalid (Stuck_run (h0, redex))
          | Interp.Out_of_fuel _, _ -> Invalid (Fuel_exhausted h0)
          | Interp.Value (v, h_final), _ ->
            (* the frame must survive untouched *)
            if not (Heap.subheap frame h_final) then
              Invalid (Frame_violated (h0, frame))
            else
              let local = Heap.diff h_final frame in
              if Assertion.sat (t.post v) local then run_all rest
              else Invalid (Post_failed (h0, v, local))))
    in
    run_all (List.concat_map (fun m -> List.map (fun f -> (m, f)) frames) ms)

let valid ?fuel ?frames t =
  match check ?fuel ?frames t with Valid _ -> true | Invalid _ -> false

(** {1 Rule-shaped facts}

    The structural rules of the logic, as checked transformations: each
    takes an already-checked triple and produces the derived one, which
    the test-suite re-checks.  (These are theorems about the checker
    validated by the checker — the executable analogue of deriving the
    rules in the logic.) *)

(** Frame rule: [{P} e {Q}  ⟹  {P ∗ R} e {Q ∗ R}]. *)
let frame (r : Assertion.t) (t : t) : t =
  {
    pre = Star (t.pre, r);
    expr = t.expr;
    post = (fun v -> Assertion.Star (t.post v, r));
  }

(** Consequence: strengthen the precondition / weaken the
    postcondition.  The entailments are checked on the spot. *)
let consequence ~(pre' : Assertion.t) ~(post' : Ast.value -> Assertion.t)
    ~(post_candidates : Ast.value list) (t : t) : t option =
  if
    Assertion.entails pre' t.pre
    && List.for_all
         (fun v -> Assertion.entails (t.post v) (post' v))
         post_candidates
  then Some { pre = pre'; expr = t.expr; post = post' }
  else None

(** {1 Classic verified programs} *)

(** [{ℓ₁ ↦ a ∗ ℓ₂ ↦ b} swap ℓ₁ ℓ₂ {ℓ₁ ↦ b ∗ ℓ₂ ↦ a}]. *)
let swap_triple ~(l1 : Ast.loc) ~(l2 : Ast.loc) ~(a : Ast.value)
    ~(b : Ast.value) : t =
  let open Ast in
  let swap =
    Parser.parse_exn
      "fun x y -> let t = !x in x := !y; y := t"
  in
  {
    pre = Star (Points_to (l1, a), Points_to (l2, b));
    expr = app2 swap (Val (Loc l1)) (Val (Loc l2));
    post =
      (fun v ->
        if v = Unit then Star (Points_to (l1, b), Points_to (l2, a))
        else Pure false);
  }

(** [{ℓ ↦ n} incr ℓ {ℓ ↦ n+1}]. *)
let incr_triple ~(l : Ast.loc) ~(n : int) : t =
  let open Ast in
  {
    pre = Points_to (l, Int n);
    expr = App (Parser.parse_exn "fun x -> x := !x + 1", Val (Loc l));
    post =
      (fun v ->
        if v = Unit then Points_to (l, Int (n + 1)) else Pure false);
  }

(** Allocation: [{emp} ref v {∃ℓ. ℓ ↦ v}] — the fresh location is
    whatever the allocator picked; the postcondition checks the single
    new cell holds [v]. *)
let alloc_triple (v0 : Ast.value) : t =
  {
    pre = Emp;
    expr = Ast.Ref (Ast.Val v0);
    post =
      (fun v ->
        match v with
        | Ast.Loc l -> Points_to (l, v0)
        | _ -> Pure false);
  }
