(** Separation-logic assertions over SHL heaps — the safety logic's
    assertion language (Figure 1, "Safety" box).

    The paper inherits Iris's safety program logic with only the
    commuting-rule adjustments of §7; we implement the sequential
    fragment executably.  Assertions here are {e precise enough to
    enumerate}: {!models} computes the (finite) set of heap fragments
    satisfying an assertion, which turns Hoare-triple checking into
    running the program from every model under every test frame
    ({!Triple}).  Quantifiers are bounded by explicit candidate lists,
    the executable stand-in for their Coq counterparts. *)

open Tfiris_shl

type t =
  | Emp
  | Pure of bool  (** [⌜φ⌝] for an already-decided proposition *)
  | Points_to of Ast.loc * Ast.value  (** [ℓ ↦ v] *)
  | Star of t * t
  | And of t * t
  | Or of t * t
  | Exists_in of Ast.value list * (Ast.value -> t)
      (** bounded existential: some candidate satisfies the body *)
  | Forall_in of Ast.value list * (Ast.value -> t)

let rec pp ppf = function
  | Emp -> Format.pp_print_string ppf "emp"
  | Pure b -> Format.fprintf ppf "\xe2\x8c\x9c%b\xe2\x8c\x9d" b
  | Points_to (l, v) ->
    Format.fprintf ppf "#%d \xe2\x86\xa6 %a" l Pretty.pp_value v
  | Star (p, q) -> Format.fprintf ppf "(%a \xe2\x88\x97 %a)" pp p pp q
  | And (p, q) -> Format.fprintf ppf "(%a \xe2\x88\xa7 %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a \xe2\x88\xa8 %a)" pp p pp q
  | Exists_in (vs, _) -> Format.fprintf ppf "\xe2\x88\x83[%d cands]. _" (List.length vs)
  | Forall_in (vs, _) -> Format.fprintf ppf "\xe2\x88\x80[%d cands]. _" (List.length vs)

(** Exact satisfaction: [sat p h] — the fragment [h] satisfies [p]
    {e exactly} (ownership reading: [Points_to] describes a singleton,
    [Star] splits the fragment). *)
let rec sat (p : t) (h : Heap.t) : bool =
  match p with
  | Emp -> Heap.size h = 0
  | Pure b -> b && Heap.size h = 0
  | Points_to (l, v) ->
    Heap.size h = 1 && Heap.lookup l h = Some v
  | Star (p, q) ->
    (* try all splits induced by p's models *)
    List.exists
      (fun hp ->
        Heap.subheap hp h && sat p hp && sat q (Heap.diff h hp))
      (models p)
  | And (p, q) -> sat p h && sat q h
  | Or (p, q) -> sat p h || sat q h
  | Exists_in (vs, body) -> List.exists (fun v -> sat (body v) h) vs
  | Forall_in (vs, body) -> List.for_all (fun v -> sat (body v) h) vs

(** The finite set of heap fragments satisfying an assertion.  [And] is
    computed by filtering; [Forall_in] by intersection. *)
and models (p : t) : Heap.t list =
  match p with
  | Emp -> [ Heap.empty ]
  | Pure b -> if b then [ Heap.empty ] else []
  | Points_to (l, v) -> [ Heap.store l v Heap.empty ]
  | Star (p, q) ->
    List.concat_map
      (fun hp ->
        List.filter_map
          (fun hq -> Heap.disjoint_union hp hq)
          (models q))
      (models p)
  | And (p, q) -> List.filter (sat q) (models p)
  | Or (p, q) -> models p @ models q
  | Exists_in (vs, body) -> List.concat_map (fun v -> models (body v)) vs
  | Forall_in (vs, body) -> (
    match vs with
    | [] -> [ Heap.empty ] (* vacuous: only emp — a convention *)
    | v0 :: rest ->
      List.filter
        (fun h -> List.for_all (fun v -> sat (body v) h) rest)
        (models (body v0)))

(** Semantic entailment on the models. *)
let entails (p : t) (q : t) : bool = List.for_all (sat q) (models p)

(** Convenient constructors. *)
let star_list = function [] -> Emp | a :: rest -> List.fold_left (fun x y -> Star (x, y)) a rest

let points_to_int l n = Points_to (l, Ast.Int n)
