(** The linear language with asynchronous channels (§5.2).

    The final case study of the paper mechanizes the main result of
    Spies, Krishnaswami and Dreyer [53]: termination of a linear
    λ-calculus with asynchronous channels — "the core of promises in
    JavaScript" — and then generalizes it with impredicative
    polymorphism.  This module defines that calculus:

    - [post e] spawns a task that evaluates [e] concurrently and
      resolves a fresh channel with the result; it returns the channel
      immediately (a {e promise});
    - [wait e] suspends the current task until the channel is resolved
      and returns the stored value (an {e await});
    - the type system is {b linear} in channels: a channel is waited on
      exactly once — and {b impredicatively polymorphic} ([∀α. τ] with
      [α] instantiable by any type, the +350-lines extension of §5.2);
    - there is {b no recursion}: termination of well-typed programs is
      the theorem the transfinite logical relation establishes.

    Values are terms in normal form (as in SHL); channels appear at
    runtime as [Chan_v]. *)

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_prod of ty * ty
  | T_fun of ty * ty  (** linear function [τ₁ ⊸ τ₂] *)
  | T_chan of ty  (** promise of a [τ] *)
  | T_var of string
  | T_forall of string * ty

type bin_op =
  | Add
  | Sub
  | Mul
  | Lt
  | Eq_int

type term =
  | Var of string
  | Unit
  | Bool of bool
  | Int of int
  | Lam of string * ty * term
  | App of term * term
  | Pair of term * term
  | Let_pair of string * string * term * term
  | Let of string * term * term
  | If of term * term * term
  | Bin of bin_op * term * term
  | Post of term  (** spawn; returns the channel *)
  | Wait of term  (** await a channel *)
  | Ty_lam of string * term  (** type abstraction [Λα. e] *)
  | Ty_app of term * ty  (** type application [e [τ]] *)
  | Chan_v of int  (** runtime channel literal *)

(** {1 Linearity}

    A type is {e linear} when values of it must be consumed exactly
    once: channels, and anything that may contain one.  Type variables
    are conservatively linear (they may be instantiated by channels). *)
let rec linear = function
  | T_unit | T_bool | T_int -> false
  | T_prod (a, b) -> linear a || linear b
  | T_fun _ -> true (* ⊸: every function is used exactly once *)
  | T_chan _ -> true
  | T_var _ -> true
  | T_forall (_, t) -> linear t

(** {1 Type substitution} *)

let rec free_ty_vars = function
  | T_unit | T_bool | T_int -> []
  | T_prod (a, b) | T_fun (a, b) -> free_ty_vars a @ free_ty_vars b
  | T_chan t -> free_ty_vars t
  | T_var a -> [ a ]
  | T_forall (a, t) -> List.filter (fun b -> b <> a) (free_ty_vars t)

let rec subst_ty (a : string) (s : ty) (t : ty) : ty =
  match t with
  | T_unit | T_bool | T_int -> t
  | T_prod (t1, t2) -> T_prod (subst_ty a s t1, subst_ty a s t2)
  | T_fun (t1, t2) -> T_fun (subst_ty a s t1, subst_ty a s t2)
  | T_chan t1 -> T_chan (subst_ty a s t1)
  | T_var b -> if a = b then s else t
  | T_forall (b, t1) ->
    if a = b then t
    else if List.mem b (free_ty_vars s) then
      (* capture: rename the binder *)
      let b' = b ^ "'" in
      T_forall (b', subst_ty a s (subst_ty b (T_var b') t1))
    else T_forall (b, subst_ty a s t1)

let rec ty_equal (t1 : ty) (t2 : ty) =
  match t1, t2 with
  | T_unit, T_unit | T_bool, T_bool | T_int, T_int -> true
  | T_prod (a1, b1), T_prod (a2, b2) | T_fun (a1, b1), T_fun (a2, b2) ->
    ty_equal a1 a2 && ty_equal b1 b2
  | T_chan a, T_chan b -> ty_equal a b
  | T_var a, T_var b -> a = b
  | T_forall (a, t1), T_forall (b, t2) ->
    ty_equal t1 (subst_ty b (T_var a) t2)
  | (T_unit | T_bool | T_int | T_prod _ | T_fun _ | T_chan _ | T_var _
    | T_forall _), _ ->
    false

(** {1 Term substitution} *)

let rec subst (x : string) (v : term) (e : term) : term =
  match e with
  | Var y -> if x = y then v else e
  | Unit | Bool _ | Int _ | Chan_v _ -> e
  | Lam (y, t, b) -> if x = y then e else Lam (y, t, subst x v b)
  | App (e1, e2) -> App (subst x v e1, subst x v e2)
  | Pair (e1, e2) -> Pair (subst x v e1, subst x v e2)
  | Let_pair (y, z, e1, e2) ->
    Let_pair (y, z, subst x v e1, if x = y || x = z then e2 else subst x v e2)
  | Let (y, e1, e2) -> Let (y, subst x v e1, if x = y then e2 else subst x v e2)
  | If (c, e1, e2) -> If (subst x v c, subst x v e1, subst x v e2)
  | Bin (op, e1, e2) -> Bin (op, subst x v e1, subst x v e2)
  | Post e1 -> Post (subst x v e1)
  | Wait e1 -> Wait (subst x v e1)
  | Ty_lam (a, e1) -> Ty_lam (a, subst x v e1)
  | Ty_app (e1, t) -> Ty_app (subst x v e1, t)

let rec subst_ty_term (a : string) (s : ty) (e : term) : term =
  match e with
  | Var _ | Unit | Bool _ | Int _ | Chan_v _ -> e
  | Lam (y, t, b) -> Lam (y, subst_ty a s t, subst_ty_term a s b)
  | App (e1, e2) -> App (subst_ty_term a s e1, subst_ty_term a s e2)
  | Pair (e1, e2) -> Pair (subst_ty_term a s e1, subst_ty_term a s e2)
  | Let_pair (y, z, e1, e2) ->
    Let_pair (y, z, subst_ty_term a s e1, subst_ty_term a s e2)
  | Let (y, e1, e2) -> Let (y, subst_ty_term a s e1, subst_ty_term a s e2)
  | If (c, e1, e2) ->
    If (subst_ty_term a s c, subst_ty_term a s e1, subst_ty_term a s e2)
  | Bin (op, e1, e2) -> Bin (op, subst_ty_term a s e1, subst_ty_term a s e2)
  | Post e1 -> Post (subst_ty_term a s e1)
  | Wait e1 -> Wait (subst_ty_term a s e1)
  | Ty_lam (b, e1) -> if a = b then e else Ty_lam (b, subst_ty_term a s e1)
  | Ty_app (e1, t) -> Ty_app (subst_ty_term a s e1, subst_ty a s t)

let rec value (e : term) =
  match e with
  | Unit | Bool _ | Int _ | Lam _ | Chan_v _ | Ty_lam _ -> true
  | Pair (a, b) -> value a && value b
  | Var _ | App _ | Let_pair _ | Let _ | If _ | Bin _ | Post _ | Wait _
  | Ty_app _ ->
    false

(** {1 Printing} *)

let rec pp_ty ppf = function
  | T_unit -> Format.pp_print_string ppf "unit"
  | T_bool -> Format.pp_print_string ppf "bool"
  | T_int -> Format.pp_print_string ppf "int"
  | T_prod (a, b) -> Format.fprintf ppf "(%a \xe2\x8a\x97 %a)" pp_ty a pp_ty b
  | T_fun (a, b) -> Format.fprintf ppf "(%a \xe2\x8a\xb8 %a)" pp_ty a pp_ty b
  | T_chan t -> Format.fprintf ppf "chan %a" pp_ty t
  | T_var a -> Format.pp_print_string ppf a
  | T_forall (a, t) -> Format.fprintf ppf "(\xe2\x88\x80%s. %a)" a pp_ty t

let rec pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Lam (x, t, b) ->
    Format.fprintf ppf "(\xce\xbb%s:%a. %a)" x pp_ty t pp b
  | App (e1, e2) -> Format.fprintf ppf "(%a %a)" pp e1 pp e2
  | Pair (e1, e2) -> Format.fprintf ppf "(%a, %a)" pp e1 pp e2
  | Let_pair (x, y, e1, e2) ->
    Format.fprintf ppf "(let (%s, %s) = %a in %a)" x y pp e1 pp e2
  | Let (x, e1, e2) -> Format.fprintf ppf "(let %s = %a in %a)" x pp e1 pp e2
  | If (c, e1, e2) -> Format.fprintf ppf "(if %a then %a else %a)" pp c pp e1 pp e2
  | Bin (op, e1, e2) ->
    let s =
      match op with
      | Add -> "+"
      | Sub -> "-"
      | Mul -> "*"
      | Lt -> "<"
      | Eq_int -> "="
    in
    Format.fprintf ppf "(%a %s %a)" pp e1 s pp e2
  | Post e -> Format.fprintf ppf "(post %a)" pp e
  | Wait e -> Format.fprintf ppf "(wait %a)" pp e
  | Ty_lam (a, e) -> Format.fprintf ppf "(\xce\x9b%s. %a)" a pp e
  | Ty_app (e, t) -> Format.fprintf ppf "(%a [%a])" pp e pp_ty t
  | Chan_v c -> Format.fprintf ppf "chan#%d" c

let to_string e = Format.asprintf "%a" pp e
