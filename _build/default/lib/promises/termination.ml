(** Termination of well-typed async-channel programs — the §5.2 result.

    Spies et al. [53] prove: every well-typed program of the linear
    channel language terminates.  Transfinite Iris re-proves this in 500
    lines of Coq using transfinite time credits up to [ω^ω] (and +350
    lines for the polymorphic extension).  Executable counterpart:

    - {!verify}: run the scheduler under the strict-descent credit
      discipline starting from [ω^ω]; the adaptive certificate
      instantiates the limit with dynamic information, and the checked
      descent makes an accepted run a termination witness — the run
      {e could not have been} infinite;
    - {!terminates_all}: fuelled sanity executions used by the test
      suite's generators;
    - example programs, including the polymorphic ones exercising
      impredicative instantiation. *)

module Ord = Tfiris_ordinal.Ord
open Syntax

type verdict =
  | Terminated of term * int * Ord.t  (** value, steps, credit left *)
  | Rejected of string * int

let pp_verdict ppf = function
  | Terminated (v, n, left) ->
    Format.fprintf ppf "terminated with %a in %d steps (credit left %a)"
      Syntax.pp v n Ord.pp left
  | Rejected (r, n) -> Format.fprintf ppf "rejected at step %d: %s" n r

(** Steps left until completion, within fuel (the adaptive oracle). *)
let remaining ?(fuel = 2_000_000) (st : Semantics.state) : int option =
  let rec go st n k =
    match Semantics.step st with
    | Semantics.Done _ -> Some k
    | Semantics.Deadlock _ | Semantics.Task_stuck _ -> None
    | Semantics.Progress st' -> if n = 0 then None else go st' (n - 1) (k + 1)
  in
  go st fuel 0

(** Run under strict ordinal descent from [credit] (default [ω^ω], the
    bound of Spies et al.).  Needs no fuel: descent is well-founded. *)
let verify ?(credit = Ord.omega_pow Ord.omega) ?oracle_fuel (e : term) :
    verdict =
  let rec go st credit n =
    match Semantics.step st with
    | Semantics.Done v -> Terminated (v, n, credit)
    | Semantics.Deadlock _ -> Rejected ("deadlock", n)
    | Semantics.Task_stuck t ->
      Rejected (Format.asprintf "stuck task: %a" Syntax.pp t, n)
    | Semantics.Progress st' -> (
      let next =
        match Ord.pred credit with
        | Some c -> Some c
        | None ->
          if Ord.is_zero credit then None
          else
            (* limit: learn the remaining schedule length dynamically *)
            Option.map Ord.of_int (remaining ?fuel:oracle_fuel st')
      in
      match next with
      | None -> Rejected ("credit exhausted / no bound found", n + 1)
      | Some c ->
        if Ord.lt c credit then go st' c (n + 1)
        else Rejected ("descent violation", n + 1))
  in
  go (Semantics.init e) credit 0

let terminates ?credit ?oracle_fuel e =
  match verify ?credit ?oracle_fuel e with
  | Terminated _ -> true
  | Rejected _ -> false

(** {1 Example programs} *)

(** [post]/[wait] round trip: [wait (post (1 + 2))]. *)
let simple_promise = Wait (Post (Bin (Add, Int 1, Int 2)))

(** A chain of promises: each task waits on the previous one. *)
let chain (n : int) : term =
  (* c0 resolves to 0; each cᵢ = wait c(i-1) + 1; the result waits cₙ. *)
  let c k = "c" ^ string_of_int k in
  let rec build k =
    if k > n then Wait (Var (c n))
    else
      Let (c k, Post (Bin (Add, Wait (Var (c (k - 1))), Int 1)), build (k + 1))
  in
  Let (c 0, Post (Int 0), build 1)

(** Fan-out/fan-in: spawn [n] tasks and sum their results. *)
let fan (n : int) : term =
  let rec spawn k acc =
    if k = 0 then acc
    else
      spawn (k - 1)
        (Let ("f" ^ string_of_int k, Post (Int k), acc))
  in
  let rec collect k acc =
    if k = 0 then acc
    else collect (k - 1) (Bin (Add, Wait (Var ("f" ^ string_of_int k)), acc))
  in
  spawn n (collect n (Int 0))

(** Waiting on a promise that is itself computed by a promise:
    [wait (wait (post (post 42)))]. *)
let nested = Wait (Wait (Post (Post (Int 42))))

(** {1 Polymorphic examples (the impredicative extension)} *)

(** [Λα. λx:α. x] — the polymorphic identity. *)
let poly_id = Ty_lam ("a", Lam ("x", T_var "a", Var "x"))

let poly_id_ty = T_forall ("a", T_fun (T_var "a", T_var "a"))

(** Impredicative self-instantiation: [id [∀α. α ⊸ α] id] applied at
    [int] to [41 + 1].  The instantiating type mentions [∀] — this is
    what "impredicative" buys. *)
let impredicative_self =
  App
    ( Ty_app
        (App (Ty_app (poly_id, poly_id_ty), poly_id), T_int),
      Bin (Add, Int 41, Int 1) )

(** A promise of a polymorphic function, awaited and used at two types
    would violate linearity — instead it is used once, at [int]. *)
let poly_promise =
  Let
    ( "p",
      Post poly_id,
      App (Ty_app (Wait (Var "p"), T_int), Int 7) )

(** {1 An ill-typed diverging program}

    The language has no recursion, but {e untyped} self-application
    diverges: [(λx. x x) (λx. x x)].  The type annotation is a lie —
    {!Typing.typecheck} rejects the term, and the credit harness never
    accepts it; running it with fuel shows it spinning. *)
let omega_untyped =
  let d = Lam ("x", T_unit, App (Var "x", Var "x")) in
  App (d, d)
