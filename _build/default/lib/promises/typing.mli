(** The linear type system of the async-channel language (§5.2).

    Each variable of linear type (channels, functions, anything
    containing them) is consumed exactly once; [unit]/[bool]/[int] are
    unrestricted; [if] branches must consume the same linear variables.
    The language has no recursion: well-typed programs terminate — the
    theorem of Spies et al. [53] exercised by {!Termination}. *)

type error = {
  where : Syntax.term;
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

exception Type_error of error

type env = (string * Syntax.ty) list

module Sset : Set.S with type elt = string

val infer : env -> Sset.t -> Syntax.term -> Syntax.ty * Sset.t
(** The type of a term and the linear variables it consumes; the second
    argument is the set of bound type variables.  Raises
    {!Type_error}. *)

val typecheck : Syntax.term -> (Syntax.ty, error) result
(** Closed programs. *)

val well_typed : Syntax.term -> bool
