(** Promise combinators: the monadic API of JavaScript promises, as
    typed term builders for the linear channel language.

    Linearity shapes the API: a combinator {e instance} is itself a
    linear value (functions are [⊸]), so these are OCaml-level builders
    producing a fresh term per use — which is exactly how a Coq
    development would quote them.  Each builder documents its typing
    rule; the test suite checks every instance against {!Typing} and
    runs it under the termination harness. *)

open Syntax

(** [pure v : chan τ] — an already-determined promise.
    [Γ ⊢ v : τ  ⟹  Γ ⊢ pure v : chan τ]. *)
let pure (v : term) : term = Post v

(** [map f c : chan τ₂] for [f : τ₁ ⊸ τ₂], [c : chan τ₁] — JavaScript's
    [c.then(f)]: a task that waits for [c] and applies [f]. *)
let map (f : term) (c : term) : term = Post (App (f, Wait c))

(** [bind c f : chan τ₂] for [c : chan τ₁], [f : τ₁ ⊸ chan τ₂] — the
    monadic bind: the inner promise produced by [f] is awaited by the
    spawned task, so the result is flat. *)
let bind (c : term) (f : term) : term = Post (Wait (App (f, Wait c)))

(** [join cc : chan τ] for [cc : chan (chan τ)]. *)
let join (cc : term) : term = Post (Wait (Wait cc))

(** [both c₁ c₂ : chan (τ₁ ⊗ τ₂)] — JavaScript's [Promise.all] for two
    promises. *)
let both (c1 : term) (c2 : term) : term = Post (Pair (Wait c1, Wait c2))

(** [race]?  There is deliberately none: racing discards one channel,
    which linearity forbids — every promise must be awaited exactly
    once.  (This is the type-system face of "no lost wake-ups".) *)

(** {1 Example pipelines} *)

(** [pipeline n]: start from [pure 1] and apply [map (+k)] for
    [k = 1..n], then await. *)
let pipeline (n : int) : term =
  let rec build k acc =
    if k > n then acc
    else
      build (k + 1)
        (map (Lam ("x", T_int, Bin (Add, Var "x", Int k))) acc)
  in
  Wait (build 1 (pure (Int 1)))

(** [tree_sum d]: a balanced fan-in of depth [d] using [both]:
    [2^d] leaf promises combined pairwise. *)
let tree_sum (d : int) : term =
  let rec build d =
    if d = 0 then pure (Int 1)
    else
      Let
        ( "l",
          build (d - 1),
          Let
            ( "r",
              build (d - 1),
              map
                (Lam
                   ( "p",
                     T_prod (T_int, T_int),
                     Let_pair ("a", "b", Var "p", Bin (Add, Var "a", Var "b"))
                   ))
                (both (Var "l") (Var "r")) ) )
  in
  Wait (build d)

(** A bind chain: each stage spawns a fresh inner promise. *)
let bind_chain (n : int) : term =
  let rec build k acc =
    if k > n then acc
    else
      build (k + 1)
        (bind acc (Lam ("x", T_int, pure (Bin (Add, Var "x", Int 1)))))
  in
  Wait (build 1 (pure (Int 0)))
