lib/promises/syntax.ml: Format List
