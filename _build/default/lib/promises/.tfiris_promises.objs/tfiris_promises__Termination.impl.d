lib/promises/termination.ml: Format Option Semantics Syntax Tfiris_ordinal
