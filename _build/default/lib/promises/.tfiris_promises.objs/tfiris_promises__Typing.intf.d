lib/promises/typing.mli: Format Set Syntax
