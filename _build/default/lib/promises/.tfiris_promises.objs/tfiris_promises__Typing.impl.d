lib/promises/typing.ml: Format List Result Set String Syntax
