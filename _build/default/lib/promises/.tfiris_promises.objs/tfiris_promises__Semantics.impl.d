lib/promises/semantics.ml: List Option Syntax
