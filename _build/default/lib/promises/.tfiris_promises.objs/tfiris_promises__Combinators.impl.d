lib/promises/combinators.ml: Syntax
