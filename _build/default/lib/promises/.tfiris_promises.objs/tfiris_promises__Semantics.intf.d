lib/promises/semantics.mli: Syntax
