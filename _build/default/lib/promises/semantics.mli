(** Run-queue scheduler semantics for the async-channel language: the
    JavaScript-promise execution model that Spies et al. [53] target.
    [post e] spawns a task resolving a fresh channel; [wait c] suspends
    until [c] is resolved; one scheduler step = one head step of the
    front runnable task. *)

type chan_state =
  | Pending
  | Resolved of Syntax.term  (** a value *)

type task = {
  resolves : int option;  (** channel this task resolves; [None] = main *)
  body : Syntax.term;
}

type state = {
  run : task list;
  blocked : (int * task) list;  (** waiting on channel *)
  chans : (int * chan_state) list;
  next_chan : int;
  main_result : Syntax.term option;
}

val init : Syntax.term -> state

type frame

val fill : frame list -> Syntax.term -> Syntax.term
val decompose : Syntax.term -> (frame list * Syntax.term) option

type step_outcome =
  | Progress of state
  | Done of Syntax.term  (** main finished with this value *)
  | Deadlock of state
  | Task_stuck of Syntax.term

val pure_head : Syntax.term -> Syntax.term option
val step : state -> step_outcome

type result =
  | Value of Syntax.term * int  (** main value and scheduler steps *)
  | Deadlocked of int
  | Stuck of Syntax.term * int
  | Out_of_fuel

val exec : ?fuel:int -> Syntax.term -> result
val eval : ?fuel:int -> Syntax.term -> Syntax.term option
