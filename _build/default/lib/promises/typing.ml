(** The linear type system of the async-channel language.

    Linear typing is what makes the termination theorem of Spies et
    al. [53] non-trivial to model — their transfinitely step-indexed
    logical relation (up to [ω^ω]) interprets these types.  The checker
    here is the syntactic side: each variable of linear type is consumed
    {e exactly once}; unrestricted variables ([unit]/[bool]/[int]) are
    free to duplicate or drop.  [If] branches must consume the same
    linear variables.

    There is no recursion in the language; well-typed programs
    terminate (the theorem exercised by {!Termination}). *)

open Syntax

module Sset = Set.Make (String)

type error = {
  where : term;
  reason : string;
}

let pp_error ppf e =
  Format.fprintf ppf "%s in %a" e.reason Syntax.pp e.where

exception Type_error of error

let fail where fmt =
  Format.kasprintf (fun reason -> raise (Type_error { where; reason })) fmt

type env = (string * ty) list

(* Combine usage sets of independent subterms: linear variables must not
   be shared. *)
let split_use (where : term) (u1 : Sset.t) (u2 : Sset.t) : Sset.t =
  let shared = Sset.inter u1 u2 in
  if not (Sset.is_empty shared) then
    fail where "linear variable %s used twice" (Sset.choose shared)
  else Sset.union u1 u2

(** [infer env tvs e]: the type of [e] and the set of linear variables it
    consumes.  [tvs] is the set of bound type variables. *)
let rec infer (env : env) (tvs : Sset.t) (e : term) : ty * Sset.t =
  match e with
  | Var x -> (
    match List.assoc_opt x env with
    | None -> fail e "unbound variable %s" x
    | Some t -> (t, if linear t then Sset.singleton x else Sset.empty))
  | Unit -> (T_unit, Sset.empty)
  | Bool _ -> (T_bool, Sset.empty)
  | Int _ -> (T_int, Sset.empty)
  | Chan_v _ -> fail e "runtime channel literal in source program"
  | Lam (x, t1, body) ->
    check_ty_wf e tvs t1;
    let t2, used = infer ((x, t1) :: env) tvs body in
    if linear t1 && not (Sset.mem x used) then
      fail e "linear argument %s unused" x
    else (T_fun (t1, t2), Sset.remove x used)
  | App (e1, e2) -> (
    let t1, u1 = infer env tvs e1 in
    let t2, u2 = infer env tvs e2 in
    match t1 with
    | T_fun (ta, tb) ->
      if ty_equal ta t2 then (tb, split_use e u1 u2)
      else
        fail e "argument type %a does not match parameter %a" pp_ty t2 pp_ty ta
    | T_unit | T_bool | T_int | T_prod _ | T_chan _ | T_var _ | T_forall _ ->
      fail e "application of a non-function of type %a" pp_ty t1)
  | Pair (e1, e2) ->
    let t1, u1 = infer env tvs e1 in
    let t2, u2 = infer env tvs e2 in
    (T_prod (t1, t2), split_use e u1 u2)
  | Let_pair (x, y, e1, e2) -> (
    let t1, u1 = infer env tvs e1 in
    match t1 with
    | T_prod (ta, tb) ->
      if x = y then fail e "pattern variables must differ"
      else begin
        let t2, u2 = infer ((x, ta) :: (y, tb) :: env) tvs e2 in
        if linear ta && not (Sset.mem x u2) then fail e "linear %s unused" x
        else if linear tb && not (Sset.mem y u2) then
          fail e "linear %s unused" y
        else (t2, split_use e u1 (Sset.remove x (Sset.remove y u2)))
      end
    | T_unit | T_bool | T_int | T_fun _ | T_chan _ | T_var _ | T_forall _ ->
      fail e "let-pair on a non-pair of type %a" pp_ty t1)
  | Let (x, e1, e2) ->
    let t1, u1 = infer env tvs e1 in
    let t2, u2 = infer ((x, t1) :: env) tvs e2 in
    if linear t1 && not (Sset.mem x u2) then fail e "linear %s unused" x
    else (t2, split_use e u1 (Sset.remove x u2))
  | If (c, e1, e2) -> (
    let tc, uc = infer env tvs c in
    match tc with
    | T_bool ->
      let t1, u1 = infer env tvs e1 in
      let t2, u2 = infer env tvs e2 in
      if not (ty_equal t1 t2) then
        fail e "branches have different types %a and %a" pp_ty t1 pp_ty t2
      else if not (Sset.equal u1 u2) then
        fail e "branches consume different linear variables"
      else (t1, split_use e uc u1)
    | T_unit | T_int | T_prod _ | T_fun _ | T_chan _ | T_var _ | T_forall _ ->
      fail e "if condition of type %a" pp_ty tc)
  | Bin (op, e1, e2) -> (
    let t1, u1 = infer env tvs e1 in
    let t2, u2 = infer env tvs e2 in
    match t1, t2 with
    | T_int, T_int ->
      let t =
        match op with Add | Sub | Mul -> T_int | Lt | Eq_int -> T_bool
      in
      (t, split_use e u1 u2)
    | _, _ -> fail e "arithmetic on non-integers")
  | Post e1 ->
    let t1, u1 = infer env tvs e1 in
    (T_chan t1, u1)
  | Wait e1 -> (
    let t1, u1 = infer env tvs e1 in
    match t1 with
    | T_chan t -> (t, u1)
    | T_unit | T_bool | T_int | T_prod _ | T_fun _ | T_var _ | T_forall _ ->
      fail e "wait on a non-channel of type %a" pp_ty t1)
  | Ty_lam (a, e1) ->
    let t1, u1 = infer env (Sset.add a tvs) e1 in
    (T_forall (a, t1), u1)
  | Ty_app (e1, t) -> (
    check_ty_wf e tvs t;
    let t1, u1 = infer env tvs e1 in
    match t1 with
    | T_forall (a, body) ->
      (* impredicative: [t] may itself be polymorphic *)
      (subst_ty a t body, u1)
    | T_unit | T_bool | T_int | T_prod _ | T_fun _ | T_chan _ | T_var _ ->
      fail e "type application of a non-polymorphic term of type %a" pp_ty t1)

and check_ty_wf (where : term) (tvs : Sset.t) (t : ty) : unit =
  List.iter
    (fun a ->
      if not (Sset.mem a tvs) then fail where "unbound type variable %s" a)
    (free_ty_vars t)

(** [typecheck e]: the type of the closed program [e], or an error. *)
let typecheck (e : term) : (ty, error) result =
  match infer [] Sset.empty e with
  | t, used ->
    if Sset.is_empty used then Ok t
    else
      Error { where = e; reason = "dangling linear usage (internal)" }
  | exception Type_error err -> Error err

let well_typed e = Result.is_ok (typecheck e)
