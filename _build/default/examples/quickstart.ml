(* Quickstart: a tour of the Transfinite Iris library.

   Run with:  dune exec examples/quickstart.exe *)

open Tfiris
module Shl = Tfiris.Shl

let () =
  print_endline "== 1. Ordinals (the transfinite step-indices) ==";
  (* Cantor normal form arithmetic below ε₀ *)
  let w = Ord.omega in
  let a = Ord.add (Ord.mul w Ord.two) (Ord.of_int 3) in
  Format.printf "  ω·2 + 3           = %a@." Ord.pp a;
  Format.printf "  1 + ω             = %a  (absorption)@." Ord.pp (Ord.add Ord.one w);
  Format.printf "  ω ⊕ (ω+1)         = %a  (Hessenberg sum)@." Ord.pp
    (Ord.hsum w (Ord.succ w));
  Format.printf "  descent depth ω·2 = %d  (well-foundedness, executably)@."
    (Ord.descent_depth (Ord.mul w Ord.two));

  print_endline "\n== 2. Step-indexed propositions as truth heights ==";
  (* SProp ≅ Ord ⊎ {⊤}: each down-closed proposition is a cut *)
  let p = Height.later_n 3 Height.ff in
  Format.printf "  h(▷³ False)       = %s@." (Height.to_string p);
  Format.printf "  Löb: (▷P ⇒ P) ⊨ P? %b@."
    (Height.entails (Height.impl (Height.later p) p) p);

  print_endline "\n== 3. The existential property (Theorem 6.2) ==";
  let fml = Formula.Exists_nat Formula.later_bot_family in
  Format.printf "  ∃n. ▷ⁿ False — finite model valid: %b, transfinite: %b@."
    (Logic_semantics.valid_fin fml)
    (Logic_semantics.valid_trans fml);
  Format.printf "  transfinite witness extraction: %a@." Existential.pp_verdict
    (Existential.check_trans Formula.later_bot_family);

  print_endline "\n== 4. Sequential HeapLang ==";
  let prog =
    Shl.Parser.parse_exn
      "let r = ref 1 in (rec f n. if n = 0 then !r else (r := !r * n; f (n - 1))) 5"
  in
  (match Shl.Interp.exec prog with
  | Shl.Interp.Value (v, _), stats ->
    Format.printf "  factorial via a reference: %s in %d steps@."
      (Shl.Pretty.value_to_string v)
      stats.Shl.Interp.steps
  | _ -> print_endline "  unexpected");

  print_endline "\n== 5. Termination-preserving refinement (§4) ==";
  let inst = Refinement.Memo_spec.fib_instance 10 in
  (match Refinement.Memo_spec.certify inst with
  | Some v -> Format.printf "  memo_rec Fib 10 ⪯ fib 10: %a@." Refinement.Driver.pp_verdict v
  | None -> print_endline "  no certificate");

  print_endline "\n== 6. Termination via transfinite time credits (§5) ==";
  let fib12 =
    Shl.Ast.App (Shl.Prog.rec_of Shl.Prog.fib_template, Shl.Ast.int_ 12)
  in
  Format.printf "  fib 12 with $ω:  %a@." Termination.Wp.pp_verdict
    (Termination.Wp.run ~credits:Ord.omega
       (Termination.Wp.adaptive ())
       (Shl.Step.config fib12));
  Format.printf "  e_loop with $ω^ω: %a  (divergence is never certified)@."
    Termination.Wp.pp_verdict
    (Termination.Wp.run
       ~credits:(Ord.omega_pow Ord.omega)
       (Termination.Wp.adaptive ~fuel:50_000 ())
       (Shl.Step.config Shl.Prog.e_loop))
