(* Termination by simulation into ordinals (Lemma 2.3 / §2.6):
   the Hydra game and Goodstein sequences.

   §2.6 of the paper observes that the source of a simulation need not
   be a programming language: instantiate it with the ordinals under >
   and a lockstep simulation becomes a termination proof.  These two
   classical games make the idea tangible — both systems grow wildly,
   neither has a natural-number measure, and both are killed by an
   ordinal one.

   Run with:  dune exec examples/hydra_goodstein.exe *)

open Tfiris

let () =
  print_endline "== Goodstein sequences ==";
  print_endline "Write n in hereditary base b, bump b to b+1, subtract 1.";
  print_endline "The values explode, but the ordinal shadow (base ↦ ω)";
  print_endline "strictly descends — so the sequence reaches 0.";
  print_endline "";
  print_endline "  G(3), in full:";
  List.iter
    (fun (base, v) ->
      Format.printf "    base %d: value %d, ordinal %a@." base v Ord.pp
        (Goodstein.ordinal_of ~base v))
    (Goodstein.sequence 3);
  print_endline "";
  print_endline "  G(4) runs for ~10^121210694 steps; its ordinal certificate";
  print_endline "  starts its descent immediately:";
  List.iteri
    (fun i o -> if i < 6 then Format.printf "    %a@." Ord.pp o)
    (Goodstein.ordinal_trace ~max_len:6 4);
  print_endline "    …";
  print_endline "";

  print_endline "== The Hydra game (Kirby–Paris) ==";
  print_endline "Chop a head; the hydra regrows copies of the maimed limb.";
  print_endline "Measure: μ(node ts) = ⊕ ω^(μ t).  Every chop strictly";
  print_endline "decreases it, so Hercules always wins — the Measure.run";
  print_endline "driver re-validates the descent at every step and needs no";
  print_endline "fuel bound.";
  print_endline "";
  let show name h =
    Format.printf "  %-24s μ = %-12s" name
      (Format.asprintf "%a" Ord.pp (Hydra.measure h))
  in
  let play name h ~choose ~regrow =
    show name h;
    match Hydra.play ~regrow ~choose h with
    | Ok n -> Format.printf "dead in %4d chops (regrow %d)@." n regrow
    | Error _ -> Format.printf "MEASURE VIOLATION?!@."
  in
  play "bush 2x2, greedy" (Hydra.bush ~width:2 ~depth:2)
    ~choose:Hydra.choose_first ~regrow:2;
  play "bush 2x2, adversarial" (Hydra.bush ~width:2 ~depth:2)
    ~choose:Hydra.choose_fattest ~regrow:2;
  play "bush 3x2, adversarial" (Hydra.bush ~width:3 ~depth:2)
    ~choose:Hydra.choose_fattest ~regrow:2;
  play "bush 3x2, regrow 4" (Hydra.bush ~width:3 ~depth:2)
    ~choose:Hydra.choose_fattest ~regrow:4;
  show "line 3 (do not play!)" (Hydra.line 3);
  Format.printf "the game is finite but astronomically long@.";
  Format.printf "@.Both games are Lemma 2.3 instances: target \xe2\xaa\xaf (Ord, >) in@.";
  Format.printf "lockstep \xe2\x9f\xb9 the target terminates on all paths.@."
