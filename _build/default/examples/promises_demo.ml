(* The linear async-channel language (§5.2): JavaScript-promise-style
   concurrency whose well-typed programs all terminate.

   Run with:  dune exec examples/promises_demo.exe *)

open Tfiris.Promises
open Syntax

let show name e =
  let ty =
    match Typing.typecheck e with
    | Ok t -> Format.asprintf "%a" pp_ty t
    | Error err -> Format.asprintf "ill-typed: %a" Typing.pp_error err
  in
  Format.printf "  %-24s : %s@." name ty;
  Format.printf "      %s@." (to_string e);
  match Typing.typecheck e with
  | Ok _ ->
    Format.printf "      %a@." Termination.pp_verdict (Termination.verify e)
  | Error _ -> (
    match Semantics.exec ~fuel:10_000 e with
    | Semantics.Out_of_fuel -> print_endline "      diverges (fuel exhausted)"
    | Semantics.Value (v, n) ->
      Format.printf "      evaluates to %s in %d steps (untyped!)@." (to_string v) n
    | Semantics.Deadlocked n -> Format.printf "      deadlocks after %d steps@." n
    | Semantics.Stuck (t, n) ->
      Format.printf "      stuck on %s after %d steps@." (to_string t) n)

let () =
  print_endline "post e  spawns a task computing e and returns its promise;";
  print_endline "wait c  suspends until the promise is resolved.  Channels are";
  print_endline "linear (awaited exactly once); the language has no recursion;";
  print_endline "types are impredicatively polymorphic.  Theorem (Spies et al.,";
  print_endline "re-proved in Transfinite Iris with credits up to ω^ω): every";
  print_endline "well-typed program terminates.";
  print_endline "";
  show "round trip" Termination.simple_promise;
  show "chain of 5 promises" (Termination.chain 5);
  show "fan-out / fan-in (4)" (Termination.fan 4);
  show "nested promise" Termination.nested;
  print_endline "";
  print_endline "== the impredicative extension ==";
  show "polymorphic identity" Termination.poly_id;
  show "id [∀a. a⊸a] id [int]" Termination.impredicative_self;
  show "promise of a ∀-value" Termination.poly_promise;
  print_endline "";
  print_endline "== what the type system rules out ==";
  show "channel never awaited" (Let ("c", Post (Int 1), Int 0));
  show "channel awaited twice"
    (Let ("c", Post (Int 1), Bin (Add, Wait (Var "c"), Wait (Var "c"))));
  show "untyped Ω" Termination.omega_untyped
