(* The safety logic and the step-indexed logical relation (Figure 1's
   "Safety" box, §5.2's type interpretations, and §7's claim that Iris
   safety proofs survive the move to Transfinite Iris).

   Run with:  dune exec examples/safety_logic.exe *)

module Shl = Tfiris.Shl
open Tfiris.Safety

let parse = Shl.Parser.parse_exn

let () =
  print_endline "== Hoare triples, checked by exhaustive execution ==";
  print_endline "Every model of the precondition is run under every test";
  print_endline "frame; the final heap must decompose as post ⊎ frame, so";
  print_endline "the frame rule is observed, not assumed.";
  print_endline "";
  let show name t =
    Format.printf "  %-44s %a@." name Triple.pp_verdict (Triple.check t)
  in
  show "{l1 ↦ 10 ∗ l2 ↦ true} swap l1 l2 {swapped}"
    (Triple.swap_triple ~l1:0 ~l2:1 ~a:(Shl.Ast.Int 10) ~b:(Shl.Ast.Bool true));
  show "{l ↦ 41} incr l {l ↦ 42}" (Triple.incr_triple ~l:0 ~n:41);
  show "{emp} ref 9 {∃l. l ↦ 9}" (Triple.alloc_triple (Shl.Ast.Int 9));
  show "{l ↦ 1} l := 2 {l ↦ 99}   (wrong!)"
    {
      Triple.pre = Assertion.Points_to (0, Shl.Ast.Int 1);
      expr = parse "#0 := 2";
      post = (fun _ -> Assertion.Points_to (0, Shl.Ast.Int 99));
    };
  show "{emp} !l {...}   (unowned footprint!)"
    { Triple.pre = Assertion.Emp; expr = parse "!(#0)"; post = (fun _ -> Assertion.Emp) };
  print_endline "";

  print_endline "== Invariants as monitors (impredicative pools) ==";
  let pool =
    [
      ( "counter",
        Invariant.cell_invariant 0 (fun v _ _ ->
            match v with Shl.Ast.Int n -> n >= 0 | _ -> false) );
    ]
  in
  let good = parse "(rec go n. if n = 0 then () else (#0 := !(#0) + 1; go (n - 1))) 5" in
  let bad = parse "#0 := 0 - 5; #0 := 1" in
  let heap = Shl.Heap.store 0 (Shl.Ast.Int 0) Shl.Heap.empty in
  Format.printf "  growing counter keeps (cell ≥ 0): %b@."
    (Invariant.preserved ~pool { Shl.Step.expr = good; heap });
  (match Invariant.monitor ~pool { Shl.Step.expr = bad; heap } with
  | Error v ->
    Format.printf "  violator caught at step %d breaking %S@." v.Invariant.step
      v.Invariant.name
  | Ok _ -> print_endline "  (violator not caught?)");
  print_endline "";

  print_endline "== The step-indexed logical relation and Landin's knot ==";
  print_endline "⟦ref τ⟧ says the cell holds a ⟦τ⟧ value — and following the";
  print_endline "reference consumes a unit of fuel, which is what makes the";
  print_endline "type-world circularity well-defined (§5.2).  Landin's knot:";
  print_endline "";
  Format.printf "  %s@." (Shl.Pretty.expr_to_string Logrel.landins_knot);
  Format.printf "@.  inferred type: %s@."
    (match Shl.Types.infer Logrel.landins_knot with
    | Ok t -> Shl.Types.ty_to_string t
    | Error m -> "?! " ^ m);
  Format.printf "  semantically safe at unit (fuel 50k): %b@."
    (Logrel.expr_ok ~fuel:50_000 Logrel.T_unit Logrel.landins_knot);
  Format.printf "  still running after 50k steps:        %b@."
    (Shl.Interp.diverges_beyond 50_000 Logrel.landins_knot);
  print_endline "";
  print_endline "Safety accepts divergence (finite prefixes all fine) — which";
  print_endline "is exactly why safety logics cannot prove termination, and";
  print_endline "why the paper had to rebuild the model to get liveness."
