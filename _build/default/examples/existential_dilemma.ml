(* The existential dilemma, narrated (§2.7 and Theorem 7.1 of the paper).

   Run with:  dune exec examples/existential_dilemma.exe *)

open Tfiris

let () =
  print_endline "The existential dilemma of step-indexed separation logic";
  print_endline "--------------------------------------------------------";
  print_endline "";
  print_endline "Consider the proposition  ∃n:ℕ. ▷ⁿ False  (\"eventually the";
  print_endline "step-index runs out\").  Its truth height in each model:";
  let fml = Dilemma.formula in
  Format.printf "  finite (ℕ) model:        %s  — every index is below some n, so VALID@."
    (Fin_height.to_string (Logic_semantics.eval_fin fml));
  Format.printf "  transfinite (Ord) model: %s — fails at ω and above, INVALID@."
    (Height.to_string (Logic_semantics.eval_trans fml));
  print_endline "";
  print_endline "Standard Iris proves this proposition by Löb induction plus the";
  print_endline "commuting rule ▷∃ ⊢ ∃▷ (the derivation is built and checked";
  print_endline "below).  If the logic also had the existential property";
  print_endline "";
  print_endline "    ⊨ ∃x. Φ x   implies   ⊨ Φ x  for some x,";
  print_endline "";
  print_endline "we could extract an n with ⊨ ▷ⁿ False and conclude ⊨ False —";
  print_endline "inconsistency (Theorem 7.1).  Every step-indexed logic must";
  print_endline "therefore choose which ingredient to give up:";
  print_endline "";
  Format.printf "%a@.@." Dilemma.pp_outcome (Dilemma.run Proof.Finite);
  Format.printf "%a@.@." Dilemma.pp_outcome (Dilemma.run Proof.Transfinite);
  print_endline "Standard Iris keeps the commuting rule and loses the existential";
  print_endline "property — and with it, liveness reasoning.  Transfinite Iris";
  print_endline "keeps the existential property (executably: the witness search";
  print_endline "above succeeds whenever the premise is valid) and loses the";
  print_endline "commuting rule.  That trade is the paper.";
  print_endline "";
  print_endline "Why liveness needs the existential property (§2.3): the target";
  print_endline "t∞ loops forever; the source s<∞ picks some n and stops after n";
  print_endline "steps.  Every finite simulation approximation holds:";
  let r = Counterexample.run () in
  Format.printf "  t∞ ⪯ᵢ s<∞ for i ≤ %d: %b@." r.Counterexample.approx_indices_checked
    r.Counterexample.approx_all_hold;
  Format.printf "  …but each index i needs a different pick: %s@."
    (String.concat ", "
       (List.filter_map
          (fun i ->
            Option.map
              (fun p -> Printf.sprintf "i=%d→pick %d" i p)
              (Counterexample.first_pick (Counterexample.witness_run i)))
          [ 4; 16; 64 ]));
  Format.printf "  and s<∞ terminates on every path: %b@."
    r.Counterexample.source_always_terminates;
  print_endline "";
  print_endline "The existential choices live inside the logic; without the";
  print_endline "existential property they cannot be hoisted to one coherent";
  print_endline "infinite source execution — so no termination-preserving";
  print_endline "refinement can be concluded.  With ordinals, index ω refutes";
  print_endline "the spurious simulation outright."
