(* The memo_rec case study (§1 and §4.3): termination-preserving
   refinement of memoized recursive functions.

   Run with:  dune exec examples/memoization.exe *)

module Shl = Tfiris.Shl
module Ref = Tfiris.Refinement

let certify inst =
  match Ref.Memo_spec.certify inst with
  | Some v ->
    Format.printf "  %-28s %a@." inst.Ref.Memo_spec.label Ref.Driver.pp_verdict v
  | None -> Format.printf "  %-28s no certificate@." inst.Ref.Memo_spec.label

let () =
  print_endline "memo_rec: cache the results of a recursive function in a";
  print_endline "mutable table (higher-order state!), and prove the memoized";
  print_endline "function refines the plain one — including termination.";
  print_endline "";
  print_endline "The SHL implementation (parsed from concrete syntax):";
  print_endline "";
  Format.printf "%s@." (Shl.Pretty.expr_to_string Shl.Prog.memo_rec);
  print_endline "";

  print_endline "== Fibonacci (pure template, Figure 4) ==";
  List.iter (fun n -> certify (Ref.Memo_spec.fib_instance n)) [ 5; 10; 15 ];
  print_endline "";
  print_endline "  the payoff — step counts:";
  List.iter
    (fun n ->
      let steps f =
        Option.get
          (Shl.Interp.steps_to_value ~fuel:200_000_000
             (Shl.Ast.App (f, Shl.Ast.int_ n)))
      in
      Format.printf "    fib %2d: plain %9d steps, memoized %6d steps@." n
        (steps (Shl.Prog.rec_of Shl.Prog.fib_template))
        (steps (Shl.Prog.memo_of Shl.Prog.fib_template)))
    [ 10; 15; 20; 22 ];
  print_endline "";

  print_endline "== Levenshtein with nested memoization (stateful template) ==";
  print_endline "  strings are null-terminated heap arrays; the Lev template is";
  print_endline "  parameterized by a string-length function that is itself";
  print_endline "  memoized (repeatable-but-not-pure, §4.3):";
  List.iter certify
    [
      Ref.Memo_spec.lev_instance "cat" "hat";
      Ref.Memo_spec.lev_instance "kitten" "sitting";
    ];
  print_endline "";

  print_endline "== Why this needs Transfinite Iris ==";
  print_endline "  1. The table lookup's length grows with the table: the";
  print_endline "     refinement needs unbounded stuttering (budget ω), beyond";
  print_endline "     any fixed-bound framework (§8, Tassarotti et al.):";
  List.iter
    (fun n ->
      match Ref.Memo_spec.lookup_cost n with
      | Some c ->
        Format.printf "       after fib %2d: a deep lookup takes %3d target-only steps@." n c
      | None -> ())
    [ 4; 10; 16 ];
  print_endline "";
  print_endline "  2. The §1 mutation (call g x instead of t g x) still passes";
  print_endline "     result-refinement checks but diverges on every input; the";
  print_endline "     termination-preserving driver can never accept it:";
  (match Ref.Memo_spec.certify ~fuel:200_000 (Ref.Memo_spec.broken_instance 3) with
  | None -> print_endline "       broken_memo(3): no certificate exists"
  | Some v -> Format.printf "       broken_memo(3): %a@." Ref.Driver.pp_verdict v)
