examples/safety_logic.mli:
