examples/hydra_goodstein.mli:
