examples/memoization.mli:
