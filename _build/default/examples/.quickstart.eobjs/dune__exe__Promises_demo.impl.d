examples/promises_demo.ml: Format Semantics Syntax Termination Tfiris Typing
