examples/event_loop.ml: Format List Tfiris
