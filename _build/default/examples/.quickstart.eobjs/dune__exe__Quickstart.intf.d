examples/quickstart.mli:
