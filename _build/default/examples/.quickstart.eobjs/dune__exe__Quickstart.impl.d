examples/quickstart.ml: Existential Format Formula Height Logic_semantics Ord Refinement Termination Tfiris
