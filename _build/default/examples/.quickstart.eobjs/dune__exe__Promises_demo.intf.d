examples/promises_demo.mli:
