examples/safety_logic.ml: Assertion Format Invariant Logrel Tfiris Triple
