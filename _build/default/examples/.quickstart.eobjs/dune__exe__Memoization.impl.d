examples/memoization.ml: Format List Option Tfiris
