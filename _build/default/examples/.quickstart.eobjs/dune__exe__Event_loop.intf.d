examples/event_loop.mli:
