examples/hydra_goodstein.ml: Format Goodstein Hydra List Ord Tfiris
