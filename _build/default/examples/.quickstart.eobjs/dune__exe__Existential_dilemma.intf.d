examples/existential_dilemma.mli:
