examples/existential_dilemma.ml: Counterexample Dilemma Fin_height Format Height List Logic_semantics Option Printf Proof String Tfiris
