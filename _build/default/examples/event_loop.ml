(* The reentrant event loop (§5.2): termination without an intrinsic
   measure, via transfinite time credits.

   Run with:  dune exec examples/event_loop.exe *)

module Shl = Tfiris.Shl
module Term = Tfiris.Termination

let () =
  print_endline "A reentrant event loop: run q pops and executes tasks; tasks";
  print_endline "may addtask more tasks while the loop drains.  The queue";
  print_endline "length is NOT a termination measure — it can grow before it";
  print_endline "shrinks.  The paper's argument: each addtask deposits credits,";
  print_endline "and the total credit is an ordinal, so only boundedly many";
  print_endline "tasks can ever be added.";
  print_endline "";

  print_endline "== reentrant clients: n top-level tasks, each spawning m ==";
  List.iter
    (fun (n, m) ->
      Format.printf "  n=%d m=%d with $\xcf\x89\xc2\xb72:  %a@." n m
        Term.Wp.pp_verdict
        (Term.Event_loop.verify_client (Term.Event_loop.reentrant_client ~n ~m)))
    [ (1, 1); (3, 5); (6, 6) ];
  print_endline "";

  print_endline "== dynamic reentrancy: the spawn count comes from u () ==";
  let u = Shl.Parser.parse_exn "fun v -> 6 * 7" in
  Format.printf "  k = u () = 42, $\xcf\x89\xc2\xb72:   %a@." Term.Wp.pp_verdict
    (Term.Event_loop.verify_client (Term.Event_loop.dynamic_client ~u));
  print_endline "";
  print_endline "  finite credits must guess the bound up front and fail when";
  print_endline "  the guess is too small (Mével et al.'s time credits prove";
  print_endline "  only bounded termination):";
  List.iter
    (fun budget ->
      Format.printf "  finite $%-5d          %a@." budget Term.Wp.pp_verdict
        (Term.Event_loop.verify_client_finite ~budget
           (Term.Event_loop.dynamic_client ~u)))
    [ 60; 400; 2000 ];
  print_endline "";
  print_endline "  with $ω the bound is instantiated during execution, at the";
  print_endline "  moment k becomes known — TSource in action (§5.1)."
